package sim

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/obs"
	"repro/internal/reorder"
	"repro/internal/statevec"
	"repro/internal/trace"
	"repro/internal/trial"
)

// ParallelSubtree runs the reordered simulation across several workers by
// decomposing the injection-prefix trie into subtree tasks
// (reorder.SplitPlan): the coordinator executes the sequential trunk —
// computing every shared prefix state exactly once — and on each spawn
// point clones the working state into a task that any worker can pick up.
// Unlike the contiguous chunking of Parallel, no prefix sharing is lost:
// the decomposition's total basic-operation count equals the sequential
// plan's for every worker count.
//
// Scheduling is dynamic: workers pull from a ready queue ordered
// largest-static-ops-first, so load balance does not depend on how trials
// happened to be distributed, and the number of cloned-but-unfinished
// entry states is bounded (2x workers) so the queue cannot hoard memory.
// Per-trial outcomes are bit-identical to the sequential simulators and
// independent of scheduling because every trial carries its own
// randomness; results are merged deterministically by trial ID.
//
// Options.SnapshotBudget caps each component's stored vectors (the
// trunk's stack, and each task's stack including its preserved entry
// state); Result.MSV reports the true concurrent high-water mark of
// stored vectors across the trunk, the queue, and all workers.
func ParallelSubtree(c *circuit.Circuit, trials []*trial.Trial, workers int, opt Options) (*Result, error) {
	return ParallelSubtreeCut(c, trials, workers, 0, opt)
}

// ParallelSubtreeCut is ParallelSubtree with an explicit trie cut depth;
// cut 0 chooses automatically (deep enough that every worker has several
// tasks, capped at 3).
func ParallelSubtreeCut(c *circuit.Circuit, trials []*trial.Trial, workers, cut int, opt Options) (*Result, error) {
	if workers < 1 {
		return nil, fmt.Errorf("sim: worker count %d < 1", workers)
	}
	if len(trials) == 0 {
		return nil, fmt.Errorf("sim: empty trial set")
	}
	if workers > len(trials) {
		workers = len(trials)
	}
	ordered := reorder.Sort(trials)
	if cut == 0 {
		cut = chooseCut(ordered, workers)
	}
	sp, err := reorder.SplitPlanOrderedCut(c, ordered, cut, opt.planBudget())
	if err != nil {
		return nil, err
	}
	return ExecuteSplitPlan(c, sp, workers, opt)
}

// chooseCut picks the shallowest trie cut that yields a comfortable
// number of tasks per worker (more tasks = better dynamic balancing, but
// deeper cuts serialize more trunk work), capped at depth 3.
func chooseCut(ordered []*trial.Trial, workers int) int {
	const tasksPerWorker = 4
	for cut := 1; ; cut++ {
		if cut == 3 || countSubtrees(ordered, cut) >= tasksPerWorker*workers {
			return cut
		}
	}
}

// countSubtrees counts the tasks a cut would produce without building the
// plan: trials are in Sort order, so each task's trials are contiguous,
// and a boundary falls wherever the task key changes. Trials with at
// least `cut` injections share a task iff their first `cut` injections
// agree; shallower trials are exhausted at their trie node and share a
// task iff their whole injection lists agree.
func countSubtrees(ordered []*trial.Trial, cut int) int {
	sameTask := func(a, b *trial.Trial) bool {
		if (len(a.Inj) >= cut) != (len(b.Inj) >= cut) {
			return false
		}
		n := cut
		if len(a.Inj) < cut {
			if len(a.Inj) != len(b.Inj) {
				return false
			}
			n = len(a.Inj)
		}
		for i := 0; i < n; i++ {
			if a.Inj[i] != b.Inj[i] {
				return false
			}
		}
		return true
	}
	count := 1
	for i := 1; i < len(ordered); i++ {
		if !sameTask(ordered[i-1], ordered[i]) {
			count++
		}
	}
	return count
}

// queuedTask is a group of spawned subtrees waiting for a worker: the
// static tasks plus their materialized entry states, one per lane. With
// Options.Lanes <= 1 every group holds a single task (the original
// one-task-per-pop behavior); larger groups are executed through the
// batched SoA engine.
type queuedTask struct {
	tasks   []*reorder.Subtree
	entries []*statevec.State
	ops     int64 // summed static task ops: the heap priority
}

// spawnGroup buffers consecutively spawned sibling tasks into one queued
// group. Non-spawn trunk steps flush the buffer, so only strictly
// consecutive spawns — siblings entering at the same layer, cloned from
// the same trunk state — share a group, which is exactly the set a
// batched sweep can advance in lockstep from its first segment.
type spawnGroup struct {
	lanes   int
	queue   *taskQueue
	tasks   []*reorder.Subtree
	entries []*statevec.State
}

func newSpawnGroup(lanes int, queue *taskQueue) *spawnGroup {
	if lanes < 1 {
		lanes = 1
	}
	return &spawnGroup{lanes: lanes, queue: queue}
}

// add buffers one spawned task; a full buffer is flushed immediately. The
// caller has already acquired one sem slot per entry, so buffering never
// exceeds the queue's entry-state bound.
func (g *spawnGroup) add(st *reorder.Subtree, entry *statevec.State) {
	g.tasks = append(g.tasks, st)
	g.entries = append(g.entries, entry)
	if len(g.tasks) >= g.lanes {
		g.flush()
	}
}

func (g *spawnGroup) flush() {
	if len(g.tasks) == 0 {
		return
	}
	var ops int64
	for _, st := range g.tasks {
		ops += st.Ops
	}
	g.queue.push(queuedTask{tasks: g.tasks, entries: g.entries, ops: ops})
	g.tasks = nil
	g.entries = nil
}

// taskQueue is the ready queue: a max-heap on static task ops under a
// mutex, so workers always pull the largest available task first.
type taskQueue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []queuedTask
	done  bool
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *taskQueue) push(t queuedTask) {
	q.mu.Lock()
	q.items = append(q.items, t)
	for i := len(q.items) - 1; i > 0; {
		p := (i - 1) / 2
		if q.items[p].ops >= q.items[i].ops {
			break
		}
		q.items[p], q.items[i] = q.items[i], q.items[p]
		i = p
	}
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until a task is available or the queue is closed and empty.
func (q *taskQueue) pop() (queuedTask, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.done {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return queuedTask{}, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		big := i
		if l <= last-1 && q.items[l].ops > q.items[big].ops {
			big = l
		}
		if r <= last-1 && q.items[r].ops > q.items[big].ops {
			big = r
		}
		if big == i {
			break
		}
		q.items[i], q.items[big] = q.items[big], q.items[i]
		i = big
	}
	return top, true
}

func (q *taskQueue) close() {
	q.mu.Lock()
	q.done = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// ExecuteSplitPlan runs a prebuilt subtree decomposition on a worker
// pool. Exposed separately so callers can choose the cut depth and reuse
// one SplitPlan across runs.
func ExecuteSplitPlan(c *circuit.Circuit, sp *reorder.SplitPlan, workers int, opt Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if workers < 1 {
		return nil, fmt.Errorf("sim: worker count %d < 1", workers)
	}
	lanes := opt.Lanes
	if lanes < 1 {
		lanes = 1
	}
	var esp *trace.Span
	if opt.Span != nil {
		esp = opt.Span.Child("execute_subtree",
			trace.String("policy", opt.Policy.String()),
			trace.Int("workers", int64(workers)),
			trace.Int("lanes", int64(lanes)),
			trace.Int("tasks", int64(len(sp.Subtrees))))
		// The trunk span, per-group subtree_task spans and all segment
		// compiles (the shared program included) nest under it.
		opt.Span = esp
	}
	var tracker msvTracker
	queue := newTaskQueue()
	// Bound on cloned-but-unfinished entry states: the trunk blocks
	// rather than materializing an entry vector per task up front. The
	// trunk acquires a slot per entry before buffering a lane group, so
	// the bound must admit at least one full group.
	semCap := 2 * workers
	if lanes > semCap {
		semCap = lanes
	}
	sem := make(chan struct{}, semCap)
	prog := sp.Prog
	if prog == nil {
		prog = opt.compileProgram(c)
	}
	if prog == nil && (opt.Policy != PolicySnapshot || lanes > 1) {
		// Reverse execution and batched sweeps exist only on compiled
		// programs; FuseOff compiles one dispatch-identical kernel per op.
		prog = opt.policyProgram(c)
	}
	arena, owned := opt.bufferPool()
	h0, m0 := arena.Stats()
	d0 := arena.Drops()

	partials := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &Result{}
			if opt.KeepStates {
				res.FinalStates = make(map[int]*statevec.State)
			}
			pool := newStatePool(c.NumQubits(), arena)
			var br *batchRunner
			if lanes > 1 && opt.Policy == PolicySnapshot {
				br = newBatchRunner(c.NumQubits(), lanes, arena)
			}
			for {
				qt, ok := queue.pop()
				if !ok {
					break
				}
				if errs[w] == nil {
					wopt := opt
					var tsp *trace.Span
					if esp != nil {
						tsp = esp.Child("subtree_task",
							trace.Int("tasks", int64(len(qt.tasks))),
							trace.Int("static_ops", qt.ops))
						tsp.SetWorker(w)
						wopt.Span = tsp
					}
					errs[w] = runTaskGroup(c, sp, prog, qt, wopt, res, &tracker, pool, br, w)
					tsp.SetError(errs[w])
					tsp.End()
				} else {
					// Already failed: drain so the trunk never blocks on
					// the entry-state bound, dropping the queued clones.
					tracker.add(-int64(len(qt.entries)))
				}
				for range qt.entries {
					<-sem
				}
			}
			if br != nil {
				br.release()
			}
			partials[w] = res
		}(w)
	}

	trunkPool := newStatePool(c.NumQubits(), arena)
	topt := opt
	var trunkSpan *trace.Span
	if esp != nil {
		trunkSpan = esp.Child("trunk")
		topt.Span = trunkSpan
	}
	trunkRes, trunkErr := runTrunk(c, sp, prog, topt, queue, sem, &tracker, trunkPool)
	trunkSpan.SetError(trunkErr)
	trunkSpan.End()
	queue.close()
	wg.Wait()
	if trunkErr != nil {
		return traceDone(esp, nil, trunkErr)
	}
	for w, err := range errs {
		if err != nil {
			return traceDone(esp, nil, fmt.Errorf("sim: worker %d: %v", w, err))
		}
	}

	merged := trunkRes
	for _, p := range partials {
		merged.Ops += p.Ops
		merged.UncomputeOps += p.UncomputeOps
		merged.Copies += p.Copies
		merged.Outcomes = append(merged.Outcomes, p.Outcomes...)
		if opt.KeepStates {
			for id, st := range p.FinalStates {
				merged.FinalStates[id] = st
			}
		}
	}
	if len(merged.Outcomes) != len(sp.Order) {
		return traceDone(esp, nil, fmt.Errorf("sim: split plan emitted %d of %d trials", len(merged.Outcomes), len(sp.Order)))
	}
	merged.MSV = tracker.highWater()
	if rec := opt.Recorder; rec != nil {
		// Trunk and tasks record their push/drop/restore/spawn events
		// inline; the logical totals are added once here so they match the
		// merged Result exactly.
		rec.Add(obs.Ops, merged.Ops)
		rec.Add(obs.Copies, merged.Copies)
		rec.SetMax(obs.MSVHighWater, int64(merged.MSV))
		if owned {
			recordPoolStats(rec, arena, h0, m0, d0)
		}
	}
	finish(merged)
	return traceDone(esp, merged, nil)
}

// runTrunk executes the sequential prefix program, feeding spawned tasks
// (with cloned entry states) into the queue. It performs each shared
// prefix computation exactly once; it never emits trials. With a compiled
// program, trunk advances use the striped Run so the otherwise
// single-threaded serialization point can borrow idle CPUs.
func runTrunk(c *circuit.Circuit, sp *reorder.SplitPlan, prog *statevec.Program, opt Options, queue *taskQueue, sem chan struct{}, tr *msvTracker, pool *statePool) (*Result, error) {
	if opt.Policy != PolicySnapshot {
		return runTrunkPolicy(c, sp, prog, opt, queue, sem, tr, pool)
	}
	res := &Result{Counts: make(map[uint64]int)}
	if opt.KeepStates {
		res.FinalStates = make(map[int]*statevec.State)
	}
	rec := opt.Recorder // trunk events carry worker id -1
	work := pool.get()
	work.Reset()
	var stack []*statevec.State
	var pushTimes []time.Time // shadows stack for snapshot-lifetime observation
	layers := c.Layers()
	ops := c.Ops()
	grp := newSpawnGroup(opt.Lanes, queue)
	for _, s := range sp.Trunk {
		if s.Kind != reorder.StepSpawn {
			// Only strictly consecutive spawns share a lane group.
			grp.flush()
		}
		switch s.Kind {
		case reorder.StepAdvance:
			if prog != nil {
				res.Ops += int64(prog.Run(work, s.From, s.To))
				continue
			}
			for l := s.From; l < s.To; l++ {
				for _, oi := range layers[l] {
					op := ops[oi]
					work.ApplyOp(op.Gate, op.Qubits...)
					res.Ops++
				}
			}
		case reorder.StepPush:
			snap := pool.get()
			snap.CopyFrom(work)
			stack = append(stack, snap)
			res.Copies++
			tr.add(1)
			if rec != nil {
				rec.Add(obs.SnapshotPushes, 1)
				rec.Event(obs.EvPush, -1, len(stack))
				pushTimes = append(pushTimes, time.Now())
			}
		case reorder.StepInject:
			work.ApplyPauli(s.Op, s.Qubit)
			res.Ops++
		case reorder.StepPop:
			if len(stack) == 0 {
				return nil, fmt.Errorf("sim: trunk pops an empty snapshot stack")
			}
			pool.put(work)
			work = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			tr.add(-1)
			if rec != nil {
				rec.Add(obs.SnapshotDrops, 1)
				rec.Event(obs.EvDrop, -1, len(stack))
				rec.Observe(obs.HistSnapshotLifetime, int64(time.Since(pushTimes[len(pushTimes)-1])))
				pushTimes = pushTimes[:len(pushTimes)-1]
			}
		case reorder.StepRestore:
			if len(stack) == 0 {
				work.Reset()
			} else {
				work.CopyFrom(stack[len(stack)-1])
				res.Copies++
			}
			if rec != nil {
				rec.Add(obs.SnapshotRestores, 1)
				rec.Event(obs.EvRestore, -1, len(stack))
				rec.Observe(obs.HistRestoreDepth, int64(len(stack)))
			}
		case reorder.StepSpawn:
			sem <- struct{}{}
			entry := pool.get()
			entry.CopyFrom(work)
			res.Copies++
			tr.add(1) // the queued entry state is a stored vector
			if rec != nil {
				rec.Add(obs.TasksSpawned, 1)
				rec.Event(obs.EvSpawn, -1, len(stack))
			}
			if tsp := opt.Span; tsp != nil {
				tsp.Event("spawn", trace.Int("task", int64(s.Task)))
			}
			grp.add(sp.Subtrees[s.Task], entry)
		default:
			return nil, fmt.Errorf("sim: invalid trunk step %v", s.Kind)
		}
	}
	grp.flush()
	if len(stack) != 0 {
		return nil, fmt.Errorf("sim: trunk leaves %d snapshots stored", len(stack))
	}
	pool.put(work)
	return res, nil
}

// runSubtree executes one task against its entry state, accumulating
// outcomes and op counts into the worker's partial result.
//
// An unbudgeted task adopts the entry clone as its working register (it
// stops being a stored vector). A budgeted task with budget >= 1 keeps
// the entry pristine at the bottom of its snapshot stack — the replay
// floor for StepRestore — and works on a copy; with budget 0 nothing is
// preserved and restores replay from |0...0>.
func runSubtree(c *circuit.Circuit, sp *reorder.SplitPlan, prog *statevec.Program, st *reorder.Subtree, entry *statevec.State, opt Options, res *Result, tr *msvTracker, pool *statePool, wid int) error {
	if opt.Policy != PolicySnapshot {
		return runSubtreePolicy(c, sp, prog, st, entry, opt, res, tr, pool, wid)
	}
	layers := c.Layers()
	ops := c.Ops()
	rec := opt.Recorder // task events carry the pool worker's id
	var work *statevec.State
	var stack []*statevec.State
	floor := 0
	keepEntry := sp.Budget() != math.MaxInt && sp.Budget() >= 1
	if keepEntry {
		stack = append(stack, entry) // stays tracked until the task ends
		floor = 1
		work = pool.get()
		work.CopyFrom(entry)
		res.Copies++
	} else {
		work = entry
		tr.add(-1) // adopted as the working register
	}
	emitted := 0
	// Trial latency is task-local: the wall time since the task started
	// (or since its previous emit), amortized over each emit batch. Trunk
	// prefix time is shared by construction and not attributed to trials.
	var emitMark time.Time
	var pushTimes []time.Time // shadows stack above the entry floor
	if rec != nil {
		emitMark = time.Now()
	}
	for _, s := range st.Steps {
		switch s.Kind {
		case reorder.StepAdvance:
			if prog != nil {
				// Task bodies run serially: the worker pool is the
				// parallelism here, striping would oversubscribe it.
				res.Ops += int64(prog.RunSerial(work, s.From, s.To))
				continue
			}
			for l := s.From; l < s.To; l++ {
				for _, oi := range layers[l] {
					op := ops[oi]
					work.ApplyOp(op.Gate, op.Qubits...)
					res.Ops++
				}
			}
		case reorder.StepPush:
			snap := pool.get()
			snap.CopyFrom(work)
			stack = append(stack, snap)
			res.Copies++
			tr.add(1)
			if rec != nil {
				rec.Add(obs.SnapshotPushes, 1)
				rec.Event(obs.EvPush, wid, len(stack))
				pushTimes = append(pushTimes, time.Now())
			}
			if tsp := opt.Span; tsp != nil {
				tsp.Event("snapshot_push", trace.Int("depth", int64(len(stack))))
			}
		case reorder.StepInject:
			work.ApplyPauli(s.Op, s.Qubit)
			res.Ops++
		case reorder.StepEmit:
			for _, idx := range s.Trials {
				t := sp.Order[idx]
				res.Outcomes = append(res.Outcomes, Outcome{TrialID: t.ID, Bits: sampleOutcome(work, c, t)})
				emitted++
				if opt.KeepStates {
					res.FinalStates[t.ID] = work.Clone()
				}
			}
			if rec != nil {
				rec.Add(obs.TrialsEmitted, int64(len(s.Trials)))
				rec.Event(obs.EvEmit, wid, len(stack))
				now := time.Now()
				if n := len(s.Trials); n > 0 {
					per := int64(now.Sub(emitMark)) / int64(n)
					for i := 0; i < n; i++ {
						rec.Observe(obs.HistTrialLatency, per)
					}
				}
				emitMark = now
			}
		case reorder.StepPop:
			if len(stack) <= floor {
				return fmt.Errorf("sim: task %d pops below its entry floor", st.ID)
			}
			pool.put(work)
			work = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			tr.add(-1)
			if rec != nil {
				rec.Add(obs.SnapshotDrops, 1)
				rec.Event(obs.EvDrop, wid, len(stack))
				// pushTimes holds only StepPush snapshots (never the entry
				// floor), and pops below the floor error out above, so the
				// shadow stack is non-empty here.
				rec.Observe(obs.HistSnapshotLifetime, int64(time.Since(pushTimes[len(pushTimes)-1])))
				pushTimes = pushTimes[:len(pushTimes)-1]
			}
		case reorder.StepRestore:
			if len(stack) == 0 {
				work.Reset()
			} else {
				work.CopyFrom(stack[len(stack)-1])
				res.Copies++
			}
			if rec != nil {
				rec.Add(obs.SnapshotRestores, 1)
				rec.Event(obs.EvRestore, wid, len(stack))
				rec.Observe(obs.HistRestoreDepth, int64(len(stack)))
			}
			if tsp := opt.Span; tsp != nil {
				tsp.Event("snapshot_restore", trace.Int("depth", int64(len(stack))))
			}
		default:
			return fmt.Errorf("sim: invalid subtree step %v", s.Kind)
		}
	}
	if len(stack) != floor {
		return fmt.Errorf("sim: task %d leaves %d snapshots stored", st.ID, len(stack)-floor)
	}
	if emitted != st.Trials {
		return fmt.Errorf("sim: task %d emitted %d of %d trials", st.ID, emitted, st.Trials)
	}
	pool.put(work)
	if keepEntry {
		tr.add(-1) // the preserved entry state is dropped with the task
		pool.put(entry)
	}
	return nil
}
