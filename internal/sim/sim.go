// Package sim provides the two noisy Monte Carlo simulators the paper
// compares:
//
//   - Baseline: every trial is executed independently from |0...0>, errors
//     injected on the fly, only the final result kept — the strategy of
//     full-state simulators like Rigetti's QVM and QX (Section V,
//     "Baseline").
//   - Reordered: trials are statically generated, reordered with
//     Algorithm 1, and executed through an explicit plan that stores
//     prefix states at branch points and drops them after their last use
//     (Section IV).
//
// Both simulators account basic operations (matrix-vector applications:
// circuit gates plus injected Paulis) and produce per-trial classical
// outcomes that are bit-identical between the two — the paper's
// mathematical-equivalence guarantee, which the test suite checks
// amplitude-by-amplitude.
package sim

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/obs"
	"repro/internal/reorder"
	"repro/internal/statevec"
	"repro/internal/trace"
	"repro/internal/trial"
)

// Outcome is the classical result of one trial: the measured bit pattern
// after readout errors.
type Outcome struct {
	TrialID int
	Bits    uint64
}

// Result aggregates a simulation run.
type Result struct {
	// Counts histograms the measured classical bit patterns.
	Counts map[uint64]int
	// Outcomes lists per-trial results in trial-ID order.
	Outcomes []Outcome
	// Ops is the number of basic operations executed (gate applications
	// plus injected Pauli applications). Reverse-executed ops are NOT
	// included — see UncomputeOps — so the snapshot executors' invariant
	// ops == plan.OptimizedOps() holds for the forward count under every
	// restore policy that does not replay.
	Ops int64
	// UncomputeOps is the number of basic operations spent running gates
	// backwards (dagger applications and reverse Pauli injections) under
	// PolicyUncompute/PolicyAdaptive. Always 0 for PolicySnapshot and
	// the baseline.
	UncomputeOps int64
	// Copies is the number of whole-state copies performed (0 for the
	// baseline).
	Copies int64
	// MSV is the peak number of stored prefix state vectors maintained
	// simultaneously (0 for the baseline).
	MSV int
	// FinalStates maps trial ID to the pre-measurement state, populated
	// only when Options.KeepStates is set (memory: one full vector per
	// distinct trial).
	FinalStates map[int]*statevec.State
}

// Options tunes a simulation run.
type Options struct {
	// KeepStates retains a copy of every trial's final pre-measurement
	// state in Result.FinalStates. Intended for equivalence tests only.
	KeepStates bool
	// SnapshotBudget caps the stored prefix state vectors, trading
	// recomputation for memory (reorder.BuildPlanBudget). 0 or negative
	// means unlimited. It applies to the plan-building entry points —
	// Reordered, Parallel, and ParallelSubtree (where it caps each
	// component's stack: the trunk's and every worker's, entry state
	// included) — and is ignored by ExecutePlan, whose plan is prebuilt.
	SnapshotBudget int
	// Fuse compiles the circuit once per run into a program of fused
	// kernels (statevec.Compile) that every trial and worker replays for
	// StepAdvance ranges. FuseExact is bit-identical to gate-by-gate
	// dispatch; FuseNumeric folds matrices algebraically (equivalent
	// within rounding). Injected Paulis stay individual ops, so the
	// basic-op accounting is unchanged in every mode. Baseline ignores
	// it — it is the dispatch reference the fused paths are checked
	// against.
	Fuse statevec.FuseMode
	// Stripes > 1 splits compiled kernel sweeps across that many
	// goroutines for states of at least StripeMin amplitudes. It applies
	// to the plan executors' single-threaded paths (most usefully the
	// subtree trunk); subtree task bodies always run their kernels
	// serially because the worker pool already saturates the CPUs.
	// Setting Stripes without Fuse compiles an unfused program (one
	// kernel per op), which is also bit-identical to dispatch.
	Stripes int
	// StripeMin overrides the minimum state size for striping (in
	// amplitudes); 0 means statevec.DefaultStripeMin. Tests set 1 to
	// exercise striping on small states.
	StripeMin int
	// Recorder, when non-nil, receives run metrics (ops, copies,
	// snapshot push/drop/restore counts, MSV high-water, emitted trials)
	// and the plan-trace event stream from every executor. nil disables
	// observability; the hot path then pays one nil-check per
	// instrumented site. Recording never perturbs the Result: executors
	// report ops == plan.OptimizedOps() with or without a recorder.
	Recorder obs.Recorder
	// Policy selects how executors return to branch points:
	// PolicySnapshot (default) stores prefix states as the plan dictates;
	// PolicyUncompute reverse-executes back to branch points instead of
	// storing anything; PolicyAdaptive chooses per branch point. Under a
	// non-snapshot policy the plan-building entry points construct
	// unbudgeted plans — the budget is enforced by the policy itself
	// (PolicyAdaptive snapshots at most SnapshotBudget frames and
	// uncomputes beyond), not by plan-level restore steps.
	Policy RestorePolicy
	// MemProbe, when non-nil and Policy is PolicyAdaptive, reports live
	// memory pressure; while it returns true the adaptive policy keeps
	// only the shallowest branch frames as real snapshots. See
	// SamplerMemProbe. nil means no pressure.
	MemProbe func() bool
	// Lanes > 1 enables the batched SoA executor on the subtree paths:
	// the trunk gathers up to Lanes consecutively spawned sibling tasks
	// (siblings entering at the same layer, cloned from the same trunk
	// state) into one group, and a worker advances the group's common
	// layer ranges through statevec.Program.RunBatch — one cache-blocked
	// sweep across all lanes per compiled segment. Outcomes, forward ops
	// and emitted trials are identical to single-lane execution at every
	// lane and worker count (bit-identical in non-numeric fuse modes).
	// Sequential executors ignore it; non-snapshot restore policies run
	// grouped tasks one lane at a time through the policy executor.
	Lanes int
	// Pool, when non-nil, is the amplitude-buffer arena the run draws
	// snapshots, entry clones and batch registers from, letting callers
	// keep buffers warm across runs (the zero-alloc steady state). nil
	// gives the run a private arena. Pool hit/miss counters are recorded
	// only by runs that own their arena, so a shared pool is counted by
	// exactly one accountant.
	Pool *statevec.BufferPool
	// Span, when non-nil, parents this run's causal trace: executors
	// open one child span per execution (execute_plan /
	// execute_parallel / execute_subtree, plus trunk and per-group
	// subtree_task spans), segment-cache misses compile under
	// "segment_compile" spans, and snapshot pushes, restores, policy
	// decisions and rollbacks become span events. nil disables tracing
	// at one pointer check per site; like Recorder, a span never
	// perturbs the Result (ops == plan.OptimizedOps() either way).
	Span *trace.Span
}

// compileProgram returns the compiled program the options imply for the
// circuit, or nil when plain gate-by-gate dispatch should run.
func (o Options) compileProgram(c *circuit.Circuit) *statevec.Program {
	if o.Fuse == statevec.FuseOff && o.Stripes <= 1 {
		return nil
	}
	return statevec.CompileWith(c, statevec.CompileOptions{
		Fuse:      o.Fuse,
		Stripes:   o.Stripes,
		StripeMin: o.StripeMin,
		Recorder:  o.Recorder,
		Span:      o.Span,
	})
}

// planBudget maps the public budget convention (0 = unlimited) onto the
// reorder package's (math.MaxInt = unlimited). Non-snapshot policies
// always build unbudgeted plans: the policy enforces the budget at run
// time (uncomputing instead of dropping), so plan-level restore/replay
// steps would only duplicate work the policy already avoids.
func (o Options) planBudget() int {
	if o.Policy != PolicySnapshot {
		return math.MaxInt
	}
	if o.SnapshotBudget <= 0 {
		return math.MaxInt
	}
	return o.SnapshotBudget
}

// msvTracker maintains a concurrent high-water mark of stored state
// vectors across every goroutine of a run: add(+1) when a vector becomes
// stored (snapshot pushed, subtree entry cloned), add(-1) when it is
// dropped or adopted as a working register. The peak is the true maximum
// number of simultaneously stored vectors, unlike a sum of per-worker
// peaks, which overstates memory because workers do not peak at the same
// instant.
type msvTracker struct {
	cur  atomic.Int64
	peak atomic.Int64
}

func (m *msvTracker) add(d int64) {
	v := m.cur.Add(d)
	if d <= 0 {
		return
	}
	for {
		p := m.peak.Load()
		if v <= p || m.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

func (m *msvTracker) highWater() int { return int(m.peak.Load()) }

// statePool adapts the shared statevec.BufferPool arena to the executors'
// get/put idiom for one register width, so the push/pop churn of deep
// plans reuses a handful of buffers instead of allocating at every branch
// return. The arena is shared by every goroutine of a run (the trunk
// clones entry states that workers later release), so buffers circulate
// instead of stranding in per-goroutine free lists.
type statePool struct {
	qubits int
	arena  *statevec.BufferPool
}

func newStatePool(n int, arena *statevec.BufferPool) *statePool {
	return &statePool{qubits: n, arena: arena}
}

// get returns a register with unspecified contents (callers overwrite it
// via CopyFrom or Reset).
func (p *statePool) get() *statevec.State { return p.arena.GetState(p.qubits) }

func (p *statePool) put(s *statevec.State) { p.arena.PutState(s) }

// bufferPool returns the arena this run allocates from and whether the
// run owns it (created here rather than supplied via Options.Pool).
func (o Options) bufferPool() (arena *statevec.BufferPool, owned bool) {
	if o.Pool != nil {
		return o.Pool, false
	}
	return statevec.NewBufferPool(), true
}

// recordPoolStats adds the arena's hit/miss/drop deltas since (h0, m0,
// d0) to the recorder. Only the run that owns an arena records it.
func recordPoolStats(rec obs.Recorder, arena *statevec.BufferPool, h0, m0, d0 int64) {
	if rec == nil {
		return
	}
	h, m := arena.Stats()
	rec.Add(obs.PoolHits, h-h0)
	rec.Add(obs.PoolMisses, m-m0)
	rec.Add(obs.PoolDrops, arena.Drops()-d0)
}

// Distribution returns the outcome histogram normalized to probabilities.
func (r *Result) Distribution() map[uint64]float64 {
	total := 0
	for _, c := range r.Counts {
		total += c
	}
	out := make(map[uint64]float64, len(r.Counts))
	if total == 0 {
		return out
	}
	for k, c := range r.Counts {
		out[k] = float64(c) / float64(total)
	}
	return out
}

// sampleOutcome turns a final state into the trial's classical bit
// pattern: sample a basis state with the trial's pre-drawn uniform, route
// measured qubits to classical bits, then apply the readout-error flips.
func sampleOutcome(st *statevec.State, c *circuit.Circuit, t *trial.Trial) uint64 {
	return sampleBitsRaw(st, c, t) ^ t.MeasFlips
}

// sampleBitsRaw is sampleOutcome without the readout flips.
func sampleBitsRaw(st *statevec.State, c *circuit.Circuit, t *trial.Trial) uint64 {
	// Inverse-CDF sampling with the trial's own uniform keeps the result
	// independent of execution order, so baseline and reordered runs
	// agree bit-for-bit.
	amp := st.Amplitudes()
	u := t.SampleU
	var cum float64
	idx := len(amp) - 1
	for i, a := range amp {
		cum += real(a)*real(a) + imag(a)*imag(a)
		if u < cum {
			idx = i
			break
		}
	}
	var bits uint64
	for _, m := range c.Measurements() {
		if idx>>uint(m.Qubit)&1 == 1 {
			bits |= 1 << uint(m.Bit)
		}
	}
	return bits
}

// Baseline runs every trial independently: reset to |0...0>, apply each
// gate layer, inject the trial's errors at each layer boundary, sample the
// terminal measurement. This is the widely adopted strategy the paper
// normalizes against.
func Baseline(c *circuit.Circuit, trials []*trial.Trial, opt Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Counts: make(map[uint64]int)}
	if opt.KeepStates {
		res.FinalStates = make(map[int]*statevec.State, len(trials))
	}
	rec := opt.Recorder
	st := statevec.NewState(c.NumQubits())
	layers := c.Layers()
	ops := c.Ops()
	var trialMark time.Time
	if rec != nil {
		trialMark = time.Now()
	}
	for _, t := range trials {
		st.Reset()
		next := 0 // cursor into the trial's sorted injection list
		for l := range layers {
			for _, oi := range layers[l] {
				op := ops[oi]
				st.ApplyOp(op.Gate, op.Qubits...)
				res.Ops++
			}
			for next < len(t.Inj) && t.Inj[next].Layer() == l {
				in := t.Inj[next].Unpack()
				st.ApplyPauli(in.Op, in.Qubit)
				res.Ops++
				next++
			}
		}
		if next != len(t.Inj) {
			return nil, fmt.Errorf("sim: trial %d has injection beyond final layer %d", t.ID, len(layers)-1)
		}
		res.Outcomes = append(res.Outcomes, Outcome{TrialID: t.ID, Bits: sampleOutcome(st, c, t)})
		if opt.KeepStates {
			res.FinalStates[t.ID] = st.Clone()
		}
		if rec != nil {
			now := time.Now()
			rec.Observe(obs.HistTrialLatency, int64(now.Sub(trialMark)))
			trialMark = now
		}
	}
	if rec != nil {
		rec.Add(obs.Ops, res.Ops)
		rec.Add(obs.TrialsEmitted, int64(len(trials)))
	}
	finish(res)
	return res, nil
}

// Reordered builds the reorder plan for the trial set (budgeted when
// Options.SnapshotBudget is set) and executes it with real state vectors:
// one working register, a snapshot stack for prefix states, snapshots
// dropped at their last use.
func Reordered(c *circuit.Circuit, trials []*trial.Trial, opt Options) (*Result, error) {
	plan, err := reorder.BuildPlanBudget(c, trials, opt.planBudget())
	if err != nil {
		return nil, err
	}
	return ExecutePlan(c, plan, opt)
}

// ExecutePlan runs a prebuilt plan. Exposed separately so callers can
// reuse one plan across analyses and execution.
func ExecutePlan(c *circuit.Circuit, plan *reorder.Plan, opt Options) (*Result, error) {
	return executePlan(c, plan, opt, &msvTracker{}, 0)
}

// executePlan is ExecutePlan reporting every stored-vector acquisition
// and release into a tracker, so concurrent executors (Parallel) can
// measure their true combined peak. Result.MSV remains this execution's
// own stack peak. Popped working registers are recycled through a free
// list rather than garbage-collected, eliminating the 2^n-sized
// allocation churn of branch returns. wid labels this execution's
// plan-trace events (0 for a sequential run, the chunk index under
// Parallel).
//
// With a span attached it wraps the execution in one "execute_plan"
// child (on the chunk's worker track under Parallel); all deeper trace
// activity — segment compiles, snapshot events, policy decisions —
// nests under that child.
func executePlan(c *circuit.Circuit, plan *reorder.Plan, opt Options, tr *msvTracker, wid int) (*Result, error) {
	if opt.Span == nil {
		return executePlanInner(c, plan, opt, tr, wid)
	}
	esp := opt.Span.Child("execute_plan",
		trace.String("policy", opt.Policy.String()),
		trace.Int("steps", int64(len(plan.Steps))),
		trace.Int("trials", int64(len(plan.Order))))
	if wid > 0 {
		esp.SetWorker(wid)
	}
	opt.Span = esp
	res, err := executePlanInner(c, plan, opt, tr, wid)
	if err != nil {
		esp.SetError(err)
	} else {
		esp.SetAttr(trace.Int("ops", res.Ops), trace.Int("copies", res.Copies))
	}
	esp.End()
	return res, err
}

func executePlanInner(c *circuit.Circuit, plan *reorder.Plan, opt Options, tr *msvTracker, wid int) (*Result, error) {
	if opt.Policy != PolicySnapshot {
		return executePlanPolicy(c, plan, opt, tr, wid)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Counts: make(map[uint64]int)}
	if opt.KeepStates {
		res.FinalStates = make(map[int]*statevec.State)
	}
	rec := opt.Recorder
	arena, owned := opt.bufferPool()
	h0, m0 := arena.Stats()
	d0 := arena.Drops()
	pool := newStatePool(c.NumQubits(), arena)
	work := pool.get()
	work.Reset()
	var stack []*statevec.State
	layers := c.Layers()
	ops := c.Ops()
	prog := plan.Prog
	if prog == nil {
		prog = opt.compileProgram(c)
	}
	// Distribution instrumentation (recorder-only): trials in a plan share
	// prefix work, so per-trial latency is the wall time since the previous
	// emit amortized equally over the emit batch — the histogram's count
	// then always equals the trials emitted. pushTimes shadows the snapshot
	// stack to measure each snapshot's push→drop lifetime.
	var emitMark time.Time
	var pushTimes []time.Time
	if rec != nil {
		emitMark = time.Now()
	}
	for _, s := range plan.Steps {
		switch s.Kind {
		case reorder.StepAdvance:
			if prog != nil {
				res.Ops += int64(prog.Run(work, s.From, s.To))
				continue
			}
			for l := s.From; l < s.To; l++ {
				for _, oi := range layers[l] {
					op := ops[oi]
					work.ApplyOp(op.Gate, op.Qubits...)
					res.Ops++
				}
			}
		case reorder.StepPush:
			snap := pool.get()
			snap.CopyFrom(work)
			stack = append(stack, snap)
			res.Copies++
			if len(stack) > res.MSV {
				res.MSV = len(stack)
			}
			tr.add(1)
			if rec != nil {
				rec.Add(obs.SnapshotPushes, 1)
				rec.Event(obs.EvPush, wid, len(stack))
				pushTimes = append(pushTimes, time.Now())
			}
			if sp := opt.Span; sp != nil {
				sp.Event("snapshot_push", trace.Int("depth", int64(len(stack))))
			}
		case reorder.StepInject:
			work.ApplyPauli(s.Op, s.Qubit)
			res.Ops++
		case reorder.StepEmit:
			for _, idx := range s.Trials {
				t := plan.Order[idx]
				res.Outcomes = append(res.Outcomes, Outcome{TrialID: t.ID, Bits: sampleOutcome(work, c, t)})
				if opt.KeepStates {
					res.FinalStates[t.ID] = work.Clone()
				}
			}
			if rec != nil {
				rec.Add(obs.TrialsEmitted, int64(len(s.Trials)))
				rec.Event(obs.EvEmit, wid, len(stack))
				now := time.Now()
				if n := len(s.Trials); n > 0 {
					per := int64(now.Sub(emitMark)) / int64(n)
					for i := 0; i < n; i++ {
						rec.Observe(obs.HistTrialLatency, per)
					}
				}
				emitMark = now
			}
		case reorder.StepPop:
			if len(stack) == 0 {
				return nil, fmt.Errorf("sim: plan pops an empty snapshot stack")
			}
			pool.put(work)
			work = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			tr.add(-1)
			if rec != nil {
				rec.Add(obs.SnapshotDrops, 1)
				rec.Event(obs.EvDrop, wid, len(stack))
				rec.Observe(obs.HistSnapshotLifetime, int64(time.Since(pushTimes[len(pushTimes)-1])))
				pushTimes = pushTimes[:len(pushTimes)-1]
			}
		case reorder.StepRestore:
			// Budgeted plans: resume from a copy of the top snapshot
			// (keeping it for its own later consumers), or from scratch
			// when nothing is stored.
			if len(stack) == 0 {
				work.Reset()
			} else {
				work.CopyFrom(stack[len(stack)-1])
				res.Copies++
			}
			if rec != nil {
				rec.Add(obs.SnapshotRestores, 1)
				rec.Event(obs.EvRestore, wid, len(stack))
				rec.Observe(obs.HistRestoreDepth, int64(len(stack)))
			}
			if sp := opt.Span; sp != nil {
				sp.Event("snapshot_restore", trace.Int("depth", int64(len(stack))))
			}
		default:
			return nil, fmt.Errorf("sim: unknown plan step %v", s.Kind)
		}
	}
	if len(res.Outcomes) != len(plan.Order) {
		return nil, fmt.Errorf("sim: plan emitted %d of %d trials", len(res.Outcomes), len(plan.Order))
	}
	// Return the registers to the arena so a caller-shared pool stays
	// warm across runs instead of leaking one working set per run.
	pool.put(work)
	for _, s := range stack {
		pool.put(s)
	}
	if rec != nil {
		rec.Add(obs.Ops, res.Ops)
		rec.Add(obs.Copies, res.Copies)
		// This execution's own stack peak; concurrent executors raise the
		// gauge again with the cross-worker tracker peak after merging.
		rec.SetMax(obs.MSVHighWater, int64(res.MSV))
		if owned {
			recordPoolStats(rec, arena, h0, m0, d0)
		}
	}
	finish(res)
	return res, nil
}

// traceDone closes an executor span with the run's outcome: the error
// on failure, the executed ops/copies as attributes on success.
// Nil-safe, so executors call it unconditionally on every return path.
func traceDone(sp *trace.Span, res *Result, err error) (*Result, error) {
	if sp != nil {
		if err != nil {
			sp.SetError(err)
		} else if res != nil {
			sp.SetAttr(trace.Int("ops", res.Ops), trace.Int("copies", res.Copies))
		}
		sp.End()
	}
	return res, err
}

// finish sorts outcomes by trial ID and fills the histogram.
func finish(res *Result) {
	sort.Slice(res.Outcomes, func(i, j int) bool { return res.Outcomes[i].TrialID < res.Outcomes[j].TrialID })
	for _, o := range res.Outcomes {
		res.Counts[o.Bits]++
	}
}

// EqualOutcomes reports whether two results produced identical per-trial
// classical outcomes — the observable form of the paper's equivalence
// claim.
func EqualOutcomes(a, b *Result) bool {
	if len(a.Outcomes) != len(b.Outcomes) {
		return false
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			return false
		}
	}
	return true
}
