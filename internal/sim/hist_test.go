package sim

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/reorder"
)

// Distribution-metric invariants: the trial-latency histogram's count
// equals the trials emitted for every executor at every worker count,
// snapshot-lifetime observations pair with snapshot drops, restore-depth
// observations pair with restores, and worker-local histograms merge to
// the same result in any order. These back the acceptance criterion
// "trial-latency histogram count == trials emitted".

func TestTrialLatencyCountMatchesTrials(t *testing.T) {
	c := bench.QV(5, 4, rand.New(rand.NewSource(13)))
	m := device.Yorktown().Model()
	trials := genTrials(t, c, m, 400, 19)
	plan, err := reorder.BuildPlan(c, trials)
	if err != nil {
		t.Fatal(err)
	}
	static := plan.OptimizedOps()

	type runner struct {
		name    string
		sharing bool
		run     func(Options) (*Result, error)
	}
	runners := []runner{
		{"Baseline", false, func(o Options) (*Result, error) { return Baseline(c, trials, o) }},
		{"ExecutePlan", true, func(o Options) (*Result, error) { return ExecutePlan(c, plan, o) }},
		{"Reordered/budget2", false, func(o Options) (*Result, error) {
			o.SnapshotBudget = 2
			return Reordered(c, trials, o)
		}},
	}
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		runners = append(runners,
			runner{name: "Parallel/" + string(rune('0'+w)), run: func(o Options) (*Result, error) {
				return Parallel(c, trials, w, o)
			}},
			runner{name: "ParallelSubtree/" + string(rune('0'+w)), sharing: true, run: func(o Options) (*Result, error) {
				return ParallelSubtree(c, trials, w, o)
			}},
		)
	}
	for _, tc := range runners {
		t.Run(tc.name, func(t *testing.T) {
			rec := obs.NewMetrics()
			res, err := tc.run(Options{Recorder: rec})
			if err != nil {
				t.Fatal(err)
			}
			if got := rec.Hist(obs.HistTrialLatency).Count(); got != int64(len(trials)) {
				t.Errorf("trial-latency count = %d, want %d", got, len(trials))
			}
			if tc.sharing && res.Ops != static {
				t.Errorf("ops = %d, want static plan count %d (histograms must not perturb execution)", res.Ops, static)
			}
			if got, want := rec.Hist(obs.HistSnapshotLifetime).Count(), rec.Counter(obs.SnapshotDrops); got != want {
				t.Errorf("snapshot-lifetime count = %d, want one per drop (%d)", got, want)
			}
			if got, want := rec.Hist(obs.HistRestoreDepth).Count(), rec.Counter(obs.SnapshotRestores); got != want {
				t.Errorf("restore-depth count = %d, want one per restore (%d)", got, want)
			}
		})
	}
}

// TestWorkerHistogramsMergeOrderInvariant executes the chunk decomposition
// of Parallel by hand, one Metrics per chunk, and checks that merging the
// worker-local trial-latency histograms in any order yields identical
// per-bucket counts summing to the trial count — the mergeability claim
// the fixed power-of-two bucket grid exists for.
func TestWorkerHistogramsMergeOrderInvariant(t *testing.T) {
	c := bench.QV(5, 3, rand.New(rand.NewSource(23)))
	m := device.Yorktown().Model()
	trials := genTrials(t, c, m, 320, 31)
	ordered := reorder.Sort(trials)
	const workers = 4
	recs := make([]*obs.Metrics, workers)
	for w := 0; w < workers; w++ {
		lo := w * len(ordered) / workers
		hi := (w + 1) * len(ordered) / workers
		plan, err := reorder.BuildPlanOrderedBudget(c, ordered[lo:hi], planBudgetFor(0))
		if err != nil {
			t.Fatal(err)
		}
		recs[w] = obs.NewMetrics()
		if _, err := ExecutePlan(c, plan, Options{Recorder: recs[w]}); err != nil {
			t.Fatal(err)
		}
	}
	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}}
	merged := make([]*obs.Histogram, len(orders))
	for oi, order := range orders {
		var h obs.Histogram
		for _, w := range order {
			h.Merge(recs[w].Hist(obs.HistTrialLatency))
		}
		merged[oi] = &h
	}
	for oi, h := range merged {
		if h.Count() != int64(len(trials)) {
			t.Errorf("order %v: merged count = %d, want %d", orders[oi], h.Count(), len(trials))
		}
		if h.Sum() != merged[0].Sum() || h.Max() != merged[0].Max() {
			t.Errorf("order %v: merged sum/max differ from first order", orders[oi])
		}
		for b := 0; b < obs.NumHistBuckets; b++ {
			if h.Bucket(b) != merged[0].Bucket(b) {
				t.Fatalf("order %v: bucket %d = %d, first order has %d", orders[oi], b, h.Bucket(b), merged[0].Bucket(b))
			}
		}
	}
}

// TestConcurrentHistogramRecording drives the subtree executor's worker
// pool into one shared Metrics recorder — with -race this is the
// concurrent-recording coverage for the histogram path, mirroring the
// msvTracker race test.
func TestConcurrentHistogramRecording(t *testing.T) {
	c := bench.QV(5, 4, rand.New(rand.NewSource(29)))
	m := device.Yorktown().Model()
	trials := genTrials(t, c, m, 500, 37)
	rec := obs.NewMetrics()
	if _, err := ParallelSubtree(c, trials, 8, Options{Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	if got := rec.Hist(obs.HistTrialLatency).Count(); got != int64(len(trials)) {
		t.Errorf("concurrent trial-latency count = %d, want %d", got, len(trials))
	}
	var bucketTotal int64
	h := rec.Hist(obs.HistTrialLatency)
	for b := 0; b < obs.NumHistBuckets; b++ {
		bucketTotal += h.Bucket(b)
	}
	if bucketTotal != h.Count() {
		t.Errorf("bucket total %d != count %d under concurrent recording", bucketTotal, h.Count())
	}
	// Chunked Parallel shares the recorder across goroutines too.
	rec2 := obs.NewMetrics()
	if _, err := Parallel(c, trials, 8, Options{Recorder: rec2}); err != nil {
		t.Fatal(err)
	}
	if got := rec2.Hist(obs.HistTrialLatency).Count(); got != int64(len(trials)) {
		t.Errorf("chunked trial-latency count = %d, want %d", got, len(trials))
	}
}
