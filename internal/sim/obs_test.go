package sim

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/reorder"
	"repro/internal/statevec"
)

// The observability contract: a Recorder attached to any executor reports
// counters that agree exactly with the Result it returns — and for the
// sharing-preserving executors, with the plan's static analysis. These
// tests are the acceptance gate for "ops == plan.OptimizedOps() in every
// mode with metrics enabled".

func TestMetricsAgreeSequential(t *testing.T) {
	c := bench.QV(5, 3, rand.New(rand.NewSource(7)))
	m := device.Yorktown().Model()
	trials := genTrials(t, c, m, 400, 11)
	plan, err := reorder.BuildPlan(c, trials)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewMetrics()
	res, err := ExecutePlan(c, plan, Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter(obs.Ops); got != res.Ops {
		t.Errorf("metrics ops = %d, Result.Ops = %d", got, res.Ops)
	}
	if res.Ops != plan.OptimizedOps() {
		t.Errorf("Result.Ops = %d, plan.OptimizedOps() = %d", res.Ops, plan.OptimizedOps())
	}
	if got := rec.Counter(obs.Copies); got != res.Copies {
		t.Errorf("metrics copies = %d, Result.Copies = %d", got, res.Copies)
	}
	if got := rec.Gauge(obs.MSVHighWater); got != int64(res.MSV) {
		t.Errorf("metrics MSV high-water = %d, Result.MSV = %d", got, res.MSV)
	}
	if got := rec.Counter(obs.TrialsEmitted); got != int64(len(trials)) {
		t.Errorf("metrics trials emitted = %d, want %d", got, len(trials))
	}
	pushes, drops := rec.Counter(obs.SnapshotPushes), rec.Counter(obs.SnapshotDrops)
	if pushes != drops {
		t.Errorf("pushes %d != drops %d: a sequential plan drops every snapshot", pushes, drops)
	}
	if pushes != res.Copies {
		// Unbudgeted sequential plans never restore, so every copy is a
		// snapshot push.
		t.Errorf("pushes %d != copies %d", pushes, res.Copies)
	}
	if rec.Counter(obs.SnapshotRestores) != 0 {
		t.Errorf("unbudgeted plan restored %d times, want 0", rec.Counter(obs.SnapshotRestores))
	}
}

// TestMetricsAgreeAllExecutors runs every executor with a live Metrics
// recorder and checks the counter/Result agreement that qsim's
// -verify-metrics flag enforces in production.
func TestMetricsAgreeAllExecutors(t *testing.T) {
	c := bench.QV(5, 4, rand.New(rand.NewSource(3)))
	m := device.Yorktown().Model()
	trials := genTrials(t, c, m, 300, 5)
	plan, err := reorder.BuildPlan(c, trials)
	if err != nil {
		t.Fatal(err)
	}
	static := plan.OptimizedOps()

	cases := []struct {
		name string
		// sharing reports whether the executor preserves all prefix
		// sharing (ops must equal the static plan count).
		sharing bool
		run     func(Options) (*Result, error)
	}{
		{"ExecutePlan", true, func(o Options) (*Result, error) {
			return ExecutePlan(c, plan, o)
		}},
		{"Reordered/budget3", false, func(o Options) (*Result, error) {
			o.SnapshotBudget = 3
			return Reordered(c, trials, o)
		}},
		{"ExecutePlan/fuseExact", true, func(o Options) (*Result, error) {
			o.Fuse = statevec.FuseExact
			return ExecutePlan(c, plan, o)
		}},
		{"ExecutePlan/fuseNumericStriped", true, func(o Options) (*Result, error) {
			o.Fuse = statevec.FuseNumeric
			o.Stripes = 4
			o.StripeMin = 1
			return ExecutePlan(c, plan, o)
		}},
		{"Parallel4", false, func(o Options) (*Result, error) {
			return Parallel(c, trials, 4, o)
		}},
		{"ParallelSubtree4", true, func(o Options) (*Result, error) {
			return ParallelSubtree(c, trials, 4, o)
		}},
		{"Baseline", false, func(o Options) (*Result, error) {
			return Baseline(c, trials, o)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := obs.NewMetrics()
			res, err := tc.run(Options{Recorder: rec})
			if err != nil {
				t.Fatal(err)
			}
			if got := rec.Counter(obs.Ops); got != res.Ops {
				t.Errorf("metrics ops = %d, Result.Ops = %d", got, res.Ops)
			}
			if tc.sharing && res.Ops != static {
				t.Errorf("ops = %d, want static plan count %d", res.Ops, static)
			}
			if got := rec.Counter(obs.TrialsEmitted); got != int64(len(trials)) {
				t.Errorf("metrics trials emitted = %d, want %d", got, len(trials))
			}
			if got := rec.Gauge(obs.MSVHighWater); got != int64(res.MSV) {
				t.Errorf("metrics MSV high-water = %d, Result.MSV = %d", got, res.MSV)
			}
			if tc.name != "Baseline" {
				if got := rec.Counter(obs.Copies); got != res.Copies {
					t.Errorf("metrics copies = %d, Result.Copies = %d", got, res.Copies)
				}
			}
		})
	}
}

// TestRecorderDoesNotPerturbResults runs each executor with and without a
// recorder and demands bit-identical outcomes and identical accounting.
func TestRecorderDoesNotPerturbResults(t *testing.T) {
	c := bench.QV(4, 3, rand.New(rand.NewSource(9)))
	m := device.Yorktown().Model()
	trials := genTrials(t, c, m, 200, 21)
	runs := map[string]func(Options) (*Result, error){
		"Reordered": func(o Options) (*Result, error) { return Reordered(c, trials, o) },
		"Parallel":  func(o Options) (*Result, error) { return Parallel(c, trials, 3, o) },
		"Subtree":   func(o Options) (*Result, error) { return ParallelSubtree(c, trials, 3, o) },
		"Baseline":  func(o Options) (*Result, error) { return Baseline(c, trials, o) },
	}
	for name, run := range runs {
		t.Run(name, func(t *testing.T) {
			bare, err := run(Options{})
			if err != nil {
				t.Fatal(err)
			}
			rec := obs.Multi(obs.NewMetrics(), obs.NewTrace())
			instrumented, err := run(Options{Recorder: rec})
			if err != nil {
				t.Fatal(err)
			}
			if !EqualOutcomes(bare, instrumented) {
				t.Error("recorder changed per-trial outcomes")
			}
			if bare.Ops != instrumented.Ops || bare.Copies != instrumented.Copies || bare.MSV != instrumented.MSV {
				t.Errorf("recorder changed accounting: ops %d/%d copies %d/%d MSV %d/%d",
					bare.Ops, instrumented.Ops, bare.Copies, instrumented.Copies, bare.MSV, instrumented.MSV)
			}
		})
	}
}

// TestTraceDepthMatchesMSV checks the trace's structural view against the
// executor's accounting: for a sequential unbudgeted run, the peak
// post-push stack depth seen in events is exactly Result.MSV, and
// push/drop events balance.
func TestTraceDepthMatchesMSV(t *testing.T) {
	c := bench.QV(5, 3, rand.New(rand.NewSource(2)))
	m := device.Yorktown().Model()
	trials := genTrials(t, c, m, 350, 8)
	plan, err := reorder.BuildPlan(c, trials)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	res, err := ExecutePlan(c, plan, Options{Recorder: tr})
	if err != nil {
		t.Fatal(err)
	}
	peak, pushes, drops := 0, 0, 0
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case obs.EvPush:
			pushes++
			if int(ev.Depth) > peak {
				peak = int(ev.Depth)
			}
		case obs.EvDrop:
			drops++
		}
		if ev.Worker != 0 {
			t.Fatalf("sequential execution produced worker id %d", ev.Worker)
		}
	}
	if peak != res.MSV {
		t.Errorf("trace peak depth = %d, Result.MSV = %d", peak, res.MSV)
	}
	if pushes != drops {
		t.Errorf("trace pushes %d != drops %d", pushes, drops)
	}
	if res.MSV != plan.MSV() {
		t.Errorf("Result.MSV = %d, plan.MSV() = %d", res.MSV, plan.MSV())
	}
}

// TestKernelSweepsRecorded checks that compiled-program execution reports
// kernel sweeps (and stripe barriers when striping is on) without
// disturbing the logical-op invariant.
func TestKernelSweepsRecorded(t *testing.T) {
	c := bench.QV(5, 3, rand.New(rand.NewSource(4)))
	m := device.Yorktown().Model()
	trials := genTrials(t, c, m, 150, 3)
	plan, err := reorder.BuildPlan(c, trials)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewMetrics()
	res, err := ExecutePlan(c, plan, Options{
		Fuse: statevec.FuseExact, Stripes: 4, StripeMin: 1, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != plan.OptimizedOps() {
		t.Errorf("fused ops = %d, want %d", res.Ops, plan.OptimizedOps())
	}
	if rec.Counter(obs.KernelSweeps) == 0 {
		t.Error("no kernel sweeps recorded under fused execution")
	}
	if rec.Counter(obs.StripeBarriers) == 0 {
		t.Error("no stripe barriers recorded with Stripes=4, StripeMin=1")
	}
	if rec.Counter(obs.StripeBarriers) > rec.Counter(obs.KernelSweeps) {
		t.Errorf("barriers %d exceed sweeps %d", rec.Counter(obs.StripeBarriers), rec.Counter(obs.KernelSweeps))
	}
}

// TestSubtreeSpawnAccounting: the subtree executor's spawn counter equals
// the split plan's task count, and trunk events carry worker id -1.
func TestSubtreeSpawnAccounting(t *testing.T) {
	c := bench.QV(5, 4, rand.New(rand.NewSource(6)))
	m := device.Yorktown().Model()
	trials := genTrials(t, c, m, 300, 17)
	ordered := reorder.Sort(trials)
	sp, err := reorder.SplitPlanOrderedCut(c, ordered, 1, planBudgetFor(0))
	if err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewMetrics()
	trace := obs.NewTrace()
	res, err := ExecuteSplitPlan(c, sp, 4, Options{Recorder: obs.Multi(metrics, trace)})
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.Counter(obs.TasksSpawned); got != int64(len(sp.Subtrees)) {
		t.Errorf("tasks spawned = %d, split plan has %d subtrees", got, len(sp.Subtrees))
	}
	if got := metrics.Counter(obs.Ops); got != res.Ops {
		t.Errorf("metrics ops = %d, Result.Ops = %d", got, res.Ops)
	}
	spawns, trunkEvents := 0, 0
	for _, ev := range trace.Events() {
		if ev.Kind == obs.EvSpawn {
			spawns++
			if ev.Worker != -1 {
				t.Errorf("spawn event from worker %d, want trunk (-1)", ev.Worker)
			}
		}
		if ev.Worker == -1 {
			trunkEvents++
		}
	}
	if spawns != len(sp.Subtrees) {
		t.Errorf("trace has %d spawn events, want %d", spawns, len(sp.Subtrees))
	}
	if trunkEvents == 0 {
		t.Error("no trunk events recorded")
	}
}
