package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/reorder"
	"repro/internal/sparse"
	"repro/internal/stabilizer"
	"repro/internal/statevec"
	"repro/internal/trial"
)

// Backend abstracts the quantum-state representation the executors drive.
// The paper's scheme only needs four capabilities from a simulator —
// reset, apply, snapshot, resume — plus terminal sampling, so any
// representation providing them (full state vector, stabilizer tableau,
// and in principle tensor networks or decision diagrams) inherits the
// inter-trial optimization unchanged. This realizes the paper's claim
// that the reordering is orthogonal to single-trial simulation technique.
type Backend interface {
	// Reset returns the state to |0...0>.
	Reset()
	// ApplyOp applies one circuit operation; an error means the backend
	// cannot represent the gate (e.g. non-Clifford on a tableau).
	ApplyOp(op circuit.Op) error
	// ApplyPauli applies an injected error operator.
	ApplyPauli(p gate.Pauli, q int)
	// Snapshot returns an independent deep copy.
	Snapshot() Backend
	// CopyFrom overwrites this state from a snapshot of the same width.
	CopyFrom(Backend) error
	// SampleBits draws the trial's classical outcome (before readout
	// flips) from the current state, deterministically in the trial's
	// own randomness so execution order cannot change results.
	SampleBits(c *circuit.Circuit, t *trial.Trial) uint64
}

// SVBackend adapts statevec.State to the Backend interface.
type SVBackend struct {
	st *statevec.State
}

// NewSVBackend returns a |0...0> state-vector backend over n qubits.
func NewSVBackend(n int) *SVBackend {
	return &SVBackend{st: statevec.NewState(n)}
}

// State exposes the wrapped state for inspection in tests.
func (b *SVBackend) State() *statevec.State { return b.st }

// Reset implements Backend.
func (b *SVBackend) Reset() { b.st.Reset() }

// ApplyOp implements Backend.
func (b *SVBackend) ApplyOp(op circuit.Op) error {
	b.st.ApplyOp(op.Gate, op.Qubits...)
	return nil
}

// ApplyPauli implements Backend.
func (b *SVBackend) ApplyPauli(p gate.Pauli, q int) { b.st.ApplyPauli(p, q) }

// Snapshot implements Backend.
func (b *SVBackend) Snapshot() Backend { return &SVBackend{st: b.st.Clone()} }

// CopyFrom implements Backend.
func (b *SVBackend) CopyFrom(src Backend) error {
	o, ok := src.(*SVBackend)
	if !ok {
		return fmt.Errorf("sim: cannot copy %T into SVBackend", src)
	}
	b.st.CopyFrom(o.st)
	return nil
}

// SampleBits implements Backend using the trial's pre-drawn uniform via
// inverse-CDF sampling, exactly as the specialized executors do.
func (b *SVBackend) SampleBits(c *circuit.Circuit, t *trial.Trial) uint64 {
	return sampleBitsRaw(b.st, c, t)
}

// TableauBackend adapts the stabilizer tableau to the Backend interface,
// enabling noisy Clifford-circuit simulation (randomized benchmarking,
// GHZ/error-correction studies) at hundreds of qubits.
type TableauBackend struct {
	tab *stabilizer.Tableau
}

// NewTableauBackend returns a |0...0> tableau backend over n qubits.
func NewTableauBackend(n int) *TableauBackend {
	return &TableauBackend{tab: stabilizer.New(n)}
}

// Tableau exposes the wrapped tableau for inspection in tests.
func (b *TableauBackend) Tableau() *stabilizer.Tableau { return b.tab }

// Reset implements Backend.
func (b *TableauBackend) Reset() { b.tab.Reset() }

// ApplyOp implements Backend.
func (b *TableauBackend) ApplyOp(op circuit.Op) error { return b.tab.ApplyOp(op) }

// ApplyPauli implements Backend.
func (b *TableauBackend) ApplyPauli(p gate.Pauli, q int) { b.tab.ApplyPauli(p, q) }

// Snapshot implements Backend.
func (b *TableauBackend) Snapshot() Backend { return &TableauBackend{tab: b.tab.Clone()} }

// CopyFrom implements Backend.
func (b *TableauBackend) CopyFrom(src Backend) error {
	o, ok := src.(*TableauBackend)
	if !ok {
		return fmt.Errorf("sim: cannot copy %T into TableauBackend", src)
	}
	b.tab.CopyFrom(o.tab)
	return nil
}

// SampleBits implements Backend. Tableau measurement needs a stream of
// random bits (one per indeterminate qubit); it is seeded from the
// trial's own randomness so the outcome is a pure function of the trial,
// independent of execution order.
func (b *TableauBackend) SampleBits(c *circuit.Circuit, t *trial.Trial) uint64 {
	seed := int64(math.Float64bits(t.SampleU)) ^ int64(t.ID)<<1
	rng := rand.New(rand.NewSource(seed))
	collapsed := b.tab.Clone()
	var bits uint64
	for _, m := range c.Measurements() {
		if collapsed.MeasureZ(m.Qubit, rng) {
			bits |= 1 << uint(m.Bit)
		}
	}
	return bits
}

// BaselineBackend runs every trial independently on a fresh backend state,
// the baseline strategy generalized over representations.
func BaselineBackend(c *circuit.Circuit, trials []*trial.Trial, be Backend) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Counts: make(map[uint64]int)}
	layers := c.Layers()
	ops := c.Ops()
	for _, t := range trials {
		be.Reset()
		next := 0
		for l := range layers {
			for _, oi := range layers[l] {
				if err := be.ApplyOp(ops[oi]); err != nil {
					return nil, err
				}
				res.Ops++
			}
			for next < len(t.Inj) && t.Inj[next].Layer() == l {
				in := t.Inj[next].Unpack()
				be.ApplyPauli(in.Op, in.Qubit)
				res.Ops++
				next++
			}
		}
		if next != len(t.Inj) {
			return nil, fmt.Errorf("sim: trial %d has injection beyond final layer", t.ID)
		}
		res.Outcomes = append(res.Outcomes, Outcome{TrialID: t.ID, Bits: be.SampleBits(c, t) ^ t.MeasFlips})
	}
	finish(res)
	return res, nil
}

// ExecutePlanBackend runs a reorder plan on any backend: the generalized
// form of ExecutePlan. The working state is `be`; snapshots are taken with
// Backend.Snapshot.
func ExecutePlanBackend(c *circuit.Circuit, plan *reorder.Plan, be Backend) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Counts: make(map[uint64]int)}
	var stack []Backend
	layers := c.Layers()
	ops := c.Ops()
	work := be
	for _, s := range plan.Steps {
		switch s.Kind {
		case reorder.StepAdvance:
			for l := s.From; l < s.To; l++ {
				for _, oi := range layers[l] {
					if err := work.ApplyOp(ops[oi]); err != nil {
						return nil, err
					}
					res.Ops++
				}
			}
		case reorder.StepPush:
			stack = append(stack, work.Snapshot())
			res.Copies++
			if len(stack) > res.MSV {
				res.MSV = len(stack)
			}
		case reorder.StepInject:
			work.ApplyPauli(s.Op, s.Qubit)
			res.Ops++
		case reorder.StepEmit:
			for _, idx := range s.Trials {
				t := plan.Order[idx]
				res.Outcomes = append(res.Outcomes, Outcome{TrialID: t.ID, Bits: work.SampleBits(c, t) ^ t.MeasFlips})
			}
		case reorder.StepPop:
			if len(stack) == 0 {
				return nil, fmt.Errorf("sim: plan pops an empty snapshot stack")
			}
			work = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		case reorder.StepRestore:
			if len(stack) == 0 {
				work.Reset()
			} else {
				if err := work.CopyFrom(stack[len(stack)-1]); err != nil {
					return nil, err
				}
				res.Copies++
			}
		default:
			return nil, fmt.Errorf("sim: unknown plan step %v", s.Kind)
		}
	}
	if len(res.Outcomes) != len(plan.Order) {
		return nil, fmt.Errorf("sim: plan emitted %d of %d trials", len(res.Outcomes), len(plan.Order))
	}
	finish(res)
	return res, nil
}

// SparseBackend adapts the sparse state-vector simulator to the Backend
// interface: states with small support (GHZ ladders, basis-state
// arithmetic) simulate in memory proportional to their support, at full
// amplitude fidelity — complementing the tableau (Clifford-only) and the
// dense vector (any circuit, exponential memory).
type SparseBackend struct {
	st *sparse.State
}

// NewSparseBackend returns a |0...0> sparse backend over n qubits.
func NewSparseBackend(n int) *SparseBackend {
	return &SparseBackend{st: sparse.NewState(n)}
}

// State exposes the wrapped sparse state for inspection in tests.
func (b *SparseBackend) State() *sparse.State { return b.st }

// Reset implements Backend.
func (b *SparseBackend) Reset() { b.st.Reset() }

// ApplyOp implements Backend.
func (b *SparseBackend) ApplyOp(op circuit.Op) error { return b.st.ApplyOp(op) }

// ApplyPauli implements Backend.
func (b *SparseBackend) ApplyPauli(p gate.Pauli, q int) { b.st.ApplyPauli(p, q) }

// Snapshot implements Backend.
func (b *SparseBackend) Snapshot() Backend { return &SparseBackend{st: b.st.Clone()} }

// CopyFrom implements Backend.
func (b *SparseBackend) CopyFrom(src Backend) error {
	o, ok := src.(*SparseBackend)
	if !ok {
		return fmt.Errorf("sim: cannot copy %T into SparseBackend", src)
	}
	b.st.CopyFrom(o.st)
	return nil
}

// SampleBits implements Backend with the trial's pre-drawn uniform.
func (b *SparseBackend) SampleBits(c *circuit.Circuit, t *trial.Trial) uint64 {
	idx := b.st.Sample(t.SampleU)
	var bits uint64
	for _, m := range c.Measurements() {
		if idx>>uint(m.Qubit)&1 == 1 {
			bits |= 1 << uint(m.Bit)
		}
	}
	return bits
}
