package sim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/obs"
	"repro/internal/reorder"
	"repro/internal/statevec"
	"repro/internal/trace"
)

// Uncomputation as an alternative to snapshots. The paper's executor
// returns to a branch point by storing a prefix state (snapshot) and
// restoring it; this file adds the dual strategy: roll the working state
// *backwards* to the branch point by applying the dagger of every op
// since the branch, in reverse order (statevec.RunReverse), at near-zero
// memory cost. A per-branch-point restore policy chooses between the two.
//
// Mechanics: a policy execution journals every mutation of the working
// register (layer advances and Pauli injections) along the current path.
// A branch point becomes either a *real* frame — an ordinary snapshot —
// or a *virtual* frame that records only the journal position. Returning
// to a real frame adopts the stored vector; returning to a virtual frame
// reverse-executes the journal suffix. The invariant throughout: the
// working register always equals the journal applied to the execution's
// base state (|0...0> for plans and trunks, the entry state for subtree
// tasks).
//
// Bit-exactness: in non-numeric fusion modes the executors promise
// Float64bits-identical outcomes, so a virtual frame may only be
// reverse-executed when its whole journal suffix is exactly invertible
// (signed-permutation gates and X/Z injections — see
// statevec.ExactlyInvertible). A non-invertible suffix is instead
// replayed forward from the nearest real frame below (or from the base),
// which is the same drop-and-recompute a budgeted plan performs and is
// bit-identical by construction. Under FuseNumeric the bit-exact promise
// is already waived, so every rollback reverse-executes.
//
// Accounting: reverse ops are reported in Result.UncomputeOps and the
// uncompute_ops counter, never in Result.Ops, so the forward count keeps
// satisfying the ops == plan.OptimizedOps() invariants of the snapshot
// executors. Forward replays of non-invertible suffixes do count in
// Result.Ops, exactly like budgeted-plan replays.

// RestorePolicy selects how a policy-aware executor returns to branch
// points.
type RestorePolicy int

const (
	// PolicySnapshot is the paper's strategy and the default: every
	// branch point stores a prefix state, returns adopt or copy it.
	PolicySnapshot RestorePolicy = iota
	// PolicyUncompute stores nothing: every branch point is virtual and
	// every return rolls the working state back through reverse
	// execution (or a forward replay where exactness forbids reversing).
	PolicyUncompute
	// PolicyAdaptive decides per branch point: snapshot while the budget
	// and memory pressure allow, uncompute otherwise — in particular it
	// goes virtual exactly where a budgeted snapshot plan would be
	// forced into drop-and-recompute restores.
	PolicyAdaptive
)

// String names the policy as the CLI spells it.
func (p RestorePolicy) String() string {
	switch p {
	case PolicySnapshot:
		return "snapshot"
	case PolicyUncompute:
		return "uncompute"
	case PolicyAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseRestorePolicy parses the CLI spelling of a restore policy.
func ParseRestorePolicy(s string) (RestorePolicy, error) {
	switch s {
	case "snapshot":
		return PolicySnapshot, nil
	case "uncompute":
		return PolicyUncompute, nil
	case "adaptive":
		return PolicyAdaptive, nil
	}
	return PolicySnapshot, fmt.Errorf("unknown restore policy %q (snapshot, uncompute, adaptive)", s)
}

// SamplerMemProbe builds a MemProbe from the runtime sampler: it reports
// pressure while the most recent sample's live heap exceeds limitBytes.
// The probe reads only already-collected samples, so probing is cheap
// enough for every branch point.
func SamplerMemProbe(s *obs.Sampler, limitBytes uint64) func() bool {
	return func() bool {
		if s == nil {
			return false
		}
		last, ok := s.Last()
		if !ok {
			return false
		}
		return last.HeapAllocBytes > limitBytes
	}
}

// policyProgram returns the compiled program a policy execution requires.
// Reverse execution exists only on compiled programs, so the policy path
// compiles even when the options would otherwise choose gate-by-gate
// dispatch; a FuseOff program is bit-identical to dispatch, keeping the
// executors' exactness promise intact.
func (o Options) policyProgram(c *circuit.Circuit) *statevec.Program {
	if p := o.compileProgram(c); p != nil {
		return p
	}
	return statevec.CompileWith(c, statevec.CompileOptions{
		Fuse:      o.Fuse,
		Stripes:   o.Stripes,
		StripeMin: o.StripeMin,
		Recorder:  o.Recorder,
		Span:      o.Span,
	})
}

// jentry is one journaled mutation of the working register: a compiled
// layer advance or a Pauli injection.
type jentry struct {
	adv      bool
	from, to int        // advance: layer range
	op       gate.Pauli // injection: operator
	qubit    int        // injection: target
}

// pframe is one branch point on the policy stack. Real frames hold a
// snapshot; virtual frames hold only the journal position to unwind to.
type pframe struct {
	real  bool
	st    *statevec.State
	pos   int // journal length when the frame was created
	pushT time.Time
}

// branchState is the working state of one policy-aware execution (one
// goroutine): the journal, the frame stack, and the counters it feeds.
type branchState struct {
	c       *circuit.Circuit
	opt     Options
	rec     obs.Recorder
	tr      *msvTracker
	pool    *statePool
	prog    *statevec.Program
	res     *Result
	wid     int
	striped bool // trunk/sequential paths stripe their sweeps, task bodies do not

	work    *statevec.State
	journal []jentry
	frames  []pframe
	floor   int  // frames below this belong to the caller (a subtree's entry)
	realCnt int  // real frames currently stored (entry floor included)
	exact   bool // non-numeric mode: reverse only exactly invertible suffixes
}

func newBranchState(c *circuit.Circuit, opt Options, prog *statevec.Program, res *Result, tr *msvTracker, pool *statePool, wid int, striped bool) *branchState {
	return &branchState{
		c: c, opt: opt, rec: opt.Recorder, tr: tr, pool: pool,
		prog: prog, res: res, wid: wid, striped: striped,
		exact: opt.Fuse != statevec.FuseNumeric,
	}
}

func (bs *branchState) runFwd(from, to int) int {
	if bs.striped {
		return bs.prog.Run(bs.work, from, to)
	}
	return bs.prog.RunSerial(bs.work, from, to)
}

func (bs *branchState) runRev(from, to int) int {
	if bs.striped {
		return bs.prog.RunReverse(bs.work, from, to)
	}
	return bs.prog.RunReverseSerial(bs.work, from, to)
}

func (bs *branchState) advance(from, to int) {
	bs.res.Ops += int64(bs.runFwd(from, to))
	bs.journal = append(bs.journal, jentry{adv: true, from: from, to: to})
}

func (bs *branchState) inject(op gate.Pauli, qubit int) {
	bs.work.ApplyPauli(op, qubit)
	bs.res.Ops++
	bs.journal = append(bs.journal, jentry{op: op, qubit: qubit})
}

// decideReal is the per-branch-point policy decision. The adaptive
// heuristic snapshots while the budget allows and goes virtual beyond it
// (where the snapshot policy would degrade to drop-and-recompute
// restores). Under live memory pressure it additionally keeps only the
// two shallowest frames real: the PR 5 lifetime/restore-depth histograms
// show shallow snapshots live longest and serve the most returns, while
// deep branch points have short suffixes that are cheap to uncompute.
// Wall-clock histogram values deliberately do not feed the decision —
// decisions must be exactly reproducible for a fixed seed.
func (bs *branchState) decideReal() bool {
	switch bs.opt.Policy {
	case PolicyUncompute:
		return false
	case PolicyAdaptive:
		budget := bs.opt.SnapshotBudget
		if budget <= 0 {
			budget = math.MaxInt
		}
		if bs.realCnt >= budget {
			return false
		}
		if bs.opt.MemProbe != nil && bs.opt.MemProbe() && len(bs.frames)-bs.floor >= 2 {
			return false
		}
		return true
	default:
		return true
	}
}

func (bs *branchState) push() {
	if bs.decideReal() {
		snap := bs.pool.get()
		snap.CopyFrom(bs.work)
		f := pframe{real: true, st: snap, pos: len(bs.journal)}
		bs.res.Copies++
		bs.realCnt++
		if bs.realCnt > bs.res.MSV {
			bs.res.MSV = bs.realCnt
		}
		bs.tr.add(1)
		if bs.rec != nil {
			bs.rec.Add(obs.SnapshotPushes, 1)
			bs.rec.Add(obs.PolicySnapshotDecisions, 1)
			bs.rec.Event(obs.EvPush, bs.wid, len(bs.frames)+1)
			f.pushT = time.Now()
		}
		if sp := bs.opt.Span; sp != nil {
			sp.Event("policy_decision",
				trace.String("decision", "snapshot"),
				trace.Int("depth", int64(len(bs.frames)+1)))
		}
		bs.frames = append(bs.frames, f)
		return
	}
	bs.frames = append(bs.frames, pframe{pos: len(bs.journal)})
	if bs.rec != nil {
		bs.rec.Add(obs.PolicyUncomputeDecisions, 1)
	}
	if sp := bs.opt.Span; sp != nil {
		sp.Event("policy_decision",
			trace.String("decision", "uncompute"),
			trace.Int("depth", int64(len(bs.frames))))
	}
}

// pop returns to the innermost branch point and removes it: adopt the
// snapshot of a real frame, unwind the journal suffix of a virtual one.
func (bs *branchState) pop() error {
	if len(bs.frames) <= bs.floor {
		return fmt.Errorf("sim: plan pops below the branch floor")
	}
	f := bs.frames[len(bs.frames)-1]
	bs.frames = bs.frames[:len(bs.frames)-1]
	if f.real {
		bs.pool.put(bs.work)
		bs.work = f.st
		bs.journal = bs.journal[:f.pos]
		bs.realCnt--
		bs.tr.add(-1)
		if bs.rec != nil {
			bs.rec.Add(obs.SnapshotDrops, 1)
			bs.rec.Event(obs.EvDrop, bs.wid, len(bs.frames))
			bs.rec.Observe(obs.HistSnapshotLifetime, int64(time.Since(f.pushT)))
		}
		return nil
	}
	bs.rollbackTo(f.pos)
	bs.journal = bs.journal[:f.pos]
	return nil
}

// restore re-enters the innermost branch point without removing it — the
// policy analogue of StepRestore in prebuilt budgeted plans. A real top
// frame is copied (kept for its later consumers); a virtual top frame is
// reverse-executed to (and stays on the stack); an empty stack resets to
// the base.
func (bs *branchState) restore() {
	if len(bs.frames) == 0 {
		bs.work.Reset()
		bs.journal = bs.journal[:0]
	} else {
		f := bs.frames[len(bs.frames)-1]
		if f.real {
			bs.work.CopyFrom(f.st)
			bs.res.Copies++
		} else {
			bs.rollbackTo(f.pos)
		}
		bs.journal = bs.journal[:f.pos]
	}
	if bs.rec != nil {
		bs.rec.Add(obs.SnapshotRestores, 1)
		bs.rec.Event(obs.EvRestore, bs.wid, len(bs.frames))
		bs.rec.Observe(obs.HistRestoreDepth, int64(bs.realCnt))
	}
}

// suffixInvertible reports whether journal[pos:] can be reverse-executed
// bit-exactly: every advance range contains only signed-permutation
// gates and every injection is an X or Z.
func (bs *branchState) suffixInvertible(pos int) bool {
	for _, e := range bs.journal[pos:] {
		if e.adv {
			if !bs.prog.SegmentExactlyInvertible(e.from, e.to) {
				return false
			}
		} else if !statevec.ExactlyInvertiblePauli(e.op) {
			return false
		}
	}
	return true
}

// rollbackTo returns the working register to its state at journal
// position pos, either by reverse execution (counted separately in
// UncomputeOps) or — when exactness forbids reversing the suffix — by a
// forward replay from the nearest real frame at or below pos (counted in
// Ops, like any budgeted-plan recompute). The caller truncates the
// journal.
func (bs *branchState) rollbackTo(pos int) {
	if pos == len(bs.journal) {
		return
	}
	if !bs.exact || bs.suffixInvertible(pos) {
		var segOps int64
		for i := len(bs.journal) - 1; i >= pos; i-- {
			e := bs.journal[i]
			if e.adv {
				segOps += int64(bs.runRev(e.from, e.to))
			} else {
				// Paulis are self-inverse; X and Z reverse bit-exactly.
				bs.work.ApplyPauli(e.op, e.qubit)
				segOps++
			}
		}
		bs.res.UncomputeOps += segOps
		if bs.rec != nil {
			bs.rec.Add(obs.UncomputeSegments, 1)
			bs.rec.Add(obs.UncomputeOps, segOps)
			bs.rec.Observe(obs.HistUncomputeDepth, segOps)
			bs.rec.Event(obs.EvUncompute, bs.wid, len(bs.frames))
		}
		if sp := bs.opt.Span; sp != nil {
			sp.Event("uncompute", trace.Int("ops", segOps))
		}
		return
	}
	base := -1
	for i := len(bs.frames) - 1; i >= 0; i-- {
		if bs.frames[i].real && bs.frames[i].pos <= pos {
			base = i
			break
		}
	}
	from := 0
	if base >= 0 {
		bs.work.CopyFrom(bs.frames[base].st)
		bs.res.Copies++
		from = bs.frames[base].pos
	} else {
		bs.work.Reset()
	}
	for _, e := range bs.journal[from:pos] {
		if e.adv {
			bs.res.Ops += int64(bs.runFwd(e.from, e.to))
		} else {
			bs.work.ApplyPauli(e.op, e.qubit)
			bs.res.Ops++
		}
	}
}

// finishCheck verifies the execution unwound to its floor.
func (bs *branchState) finishCheck() error {
	if len(bs.frames) != bs.floor {
		return fmt.Errorf("sim: policy execution leaves %d branch frames", len(bs.frames)-bs.floor)
	}
	return nil
}

// executePlanPolicy is executePlan for Options.Policy != PolicySnapshot:
// the same step semantics, with branch points managed by the restore
// policy instead of an unconditional snapshot stack.
func executePlanPolicy(c *circuit.Circuit, plan *reorder.Plan, opt Options, tr *msvTracker, wid int) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Counts: make(map[uint64]int)}
	if opt.KeepStates {
		res.FinalStates = make(map[int]*statevec.State)
	}
	rec := opt.Recorder
	prog := plan.Prog
	if prog == nil {
		prog = opt.policyProgram(c)
	}
	arena, owned := opt.bufferPool()
	h0, m0 := arena.Stats()
	d0 := arena.Drops()
	pool := newStatePool(c.NumQubits(), arena)
	bs := newBranchState(c, opt, prog, res, tr, pool, wid, true)
	bs.work = pool.get()
	bs.work.Reset()
	var emitMark time.Time
	if rec != nil {
		emitMark = time.Now()
	}
	for _, s := range plan.Steps {
		switch s.Kind {
		case reorder.StepAdvance:
			bs.advance(s.From, s.To)
		case reorder.StepPush:
			bs.push()
		case reorder.StepInject:
			bs.inject(s.Op, s.Qubit)
		case reorder.StepEmit:
			for _, idx := range s.Trials {
				t := plan.Order[idx]
				res.Outcomes = append(res.Outcomes, Outcome{TrialID: t.ID, Bits: sampleOutcome(bs.work, c, t)})
				if opt.KeepStates {
					res.FinalStates[t.ID] = bs.work.Clone()
				}
			}
			if rec != nil {
				rec.Add(obs.TrialsEmitted, int64(len(s.Trials)))
				rec.Event(obs.EvEmit, wid, len(bs.frames))
				now := time.Now()
				if n := len(s.Trials); n > 0 {
					per := int64(now.Sub(emitMark)) / int64(n)
					for i := 0; i < n; i++ {
						rec.Observe(obs.HistTrialLatency, per)
					}
				}
				emitMark = now
			}
		case reorder.StepPop:
			if err := bs.pop(); err != nil {
				return nil, err
			}
		case reorder.StepRestore:
			bs.restore()
		default:
			return nil, fmt.Errorf("sim: unknown plan step %v", s.Kind)
		}
	}
	if len(res.Outcomes) != len(plan.Order) {
		return nil, fmt.Errorf("sim: plan emitted %d of %d trials", len(res.Outcomes), len(plan.Order))
	}
	if err := bs.finishCheck(); err != nil {
		return nil, err
	}
	pool.put(bs.work)
	if rec != nil {
		rec.Add(obs.Ops, res.Ops)
		rec.Add(obs.Copies, res.Copies)
		rec.SetMax(obs.MSVHighWater, int64(res.MSV))
		if owned {
			recordPoolStats(rec, arena, h0, m0, d0)
		}
	}
	finish(res)
	return res, nil
}

// runTrunkPolicy is runTrunk under a restore policy: trunk branch points
// go through the policy, spawns clone the working register as before.
func runTrunkPolicy(c *circuit.Circuit, sp *reorder.SplitPlan, prog *statevec.Program, opt Options, queue *taskQueue, sem chan struct{}, tr *msvTracker, pool *statePool) (*Result, error) {
	res := &Result{Counts: make(map[uint64]int)}
	if opt.KeepStates {
		res.FinalStates = make(map[int]*statevec.State)
	}
	rec := opt.Recorder // trunk events carry worker id -1
	bs := newBranchState(c, opt, prog, res, tr, pool, -1, true)
	bs.work = pool.get()
	bs.work.Reset()
	grp := newSpawnGroup(opt.Lanes, queue)
	for _, s := range sp.Trunk {
		if s.Kind != reorder.StepSpawn {
			// Only strictly consecutive spawns share a lane group.
			grp.flush()
		}
		switch s.Kind {
		case reorder.StepAdvance:
			bs.advance(s.From, s.To)
		case reorder.StepPush:
			bs.push()
		case reorder.StepInject:
			bs.inject(s.Op, s.Qubit)
		case reorder.StepPop:
			if err := bs.pop(); err != nil {
				return nil, err
			}
		case reorder.StepRestore:
			bs.restore()
		case reorder.StepSpawn:
			sem <- struct{}{}
			entry := pool.get()
			entry.CopyFrom(bs.work)
			res.Copies++
			tr.add(1) // the queued entry state is a stored vector
			if rec != nil {
				rec.Add(obs.TasksSpawned, 1)
				rec.Event(obs.EvSpawn, -1, len(bs.frames))
			}
			if tsp := opt.Span; tsp != nil {
				tsp.Event("spawn", trace.Int("task", int64(s.Task)))
			}
			grp.add(sp.Subtrees[s.Task], entry)
		default:
			return nil, fmt.Errorf("sim: invalid trunk step %v", s.Kind)
		}
	}
	grp.flush()
	if err := bs.finishCheck(); err != nil {
		return nil, err
	}
	pool.put(bs.work)
	return res, nil
}

// runSubtreePolicy is runSubtree under a restore policy. The entry state
// is always kept as a real frame at the stack floor: a subtree's journal
// covers only its own steps (not the trunk prefix), so the base every
// replay and restore bottoms out at must be the entry, never |0...0>.
// The entry is a spawn clone, already counted by the tracker at spawn
// and never reported as a snapshot push — PolicyUncompute still executes
// with snapshot_pushes == 0.
func runSubtreePolicy(c *circuit.Circuit, sp *reorder.SplitPlan, prog *statevec.Program, st *reorder.Subtree, entry *statevec.State, opt Options, res *Result, tr *msvTracker, pool *statePool, wid int) error {
	rec := opt.Recorder // task events carry the pool worker's id
	bs := newBranchState(c, opt, prog, res, tr, pool, wid, false)
	bs.work = pool.get()
	bs.work.CopyFrom(entry)
	res.Copies++
	bs.frames = []pframe{{real: true, st: entry, pos: 0}}
	bs.floor = 1
	bs.realCnt = 1
	emitted := 0
	var emitMark time.Time
	if rec != nil {
		emitMark = time.Now()
	}
	for _, s := range st.Steps {
		switch s.Kind {
		case reorder.StepAdvance:
			bs.advance(s.From, s.To)
		case reorder.StepPush:
			bs.push()
		case reorder.StepInject:
			bs.inject(s.Op, s.Qubit)
		case reorder.StepEmit:
			for _, idx := range s.Trials {
				t := sp.Order[idx]
				res.Outcomes = append(res.Outcomes, Outcome{TrialID: t.ID, Bits: sampleOutcome(bs.work, c, t)})
				emitted++
				if opt.KeepStates {
					res.FinalStates[t.ID] = bs.work.Clone()
				}
			}
			if rec != nil {
				rec.Add(obs.TrialsEmitted, int64(len(s.Trials)))
				rec.Event(obs.EvEmit, wid, len(bs.frames))
				now := time.Now()
				if n := len(s.Trials); n > 0 {
					per := int64(now.Sub(emitMark)) / int64(n)
					for i := 0; i < n; i++ {
						rec.Observe(obs.HistTrialLatency, per)
					}
				}
				emitMark = now
			}
		case reorder.StepPop:
			if err := bs.pop(); err != nil {
				return fmt.Errorf("sim: task %d pops below its entry floor", st.ID)
			}
		case reorder.StepRestore:
			bs.restore()
		default:
			return fmt.Errorf("sim: invalid subtree step %v", s.Kind)
		}
	}
	if err := bs.finishCheck(); err != nil {
		return fmt.Errorf("sim: task %d: %v", st.ID, err)
	}
	if emitted != st.Trials {
		return fmt.Errorf("sim: task %d emitted %d of %d trials", st.ID, emitted, st.Trials)
	}
	pool.put(bs.work)
	tr.add(-1) // the preserved entry state is dropped with the task
	pool.put(entry)
	return nil
}
