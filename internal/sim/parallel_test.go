package sim

import (
	"testing"
	"testing/quick"

	"math/rand"

	"repro/internal/bench"
	"repro/internal/noise"
	"repro/internal/reorder"
)

func TestParallelMatchesSequential(t *testing.T) {
	c := bench.QFT(4)
	m := noise.Uniform("u", 4, 5e-3, 5e-2, 2e-2)
	trials := genTrials(t, c, m, 600, 20)
	seq, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		par, err := Parallel(c, trials, workers, Options{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !EqualOutcomes(seq, par) {
			t.Errorf("workers=%d: outcomes differ from sequential", workers)
		}
		if par.Ops < seq.Ops {
			t.Errorf("workers=%d: parallel ops %d below sequential %d", workers, par.Ops, seq.Ops)
		}
	}
}

func TestParallelSingleWorkerIdenticalCost(t *testing.T) {
	c := bench.BV(4, 0b111)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 300, 21)
	seq, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Parallel(c, trials, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if par.Ops != seq.Ops || par.MSV != seq.MSV {
		t.Errorf("1-worker parallel (%d ops, %d MSV) != sequential (%d, %d)",
			par.Ops, par.MSV, seq.Ops, seq.MSV)
	}
}

func TestParallelValidation(t *testing.T) {
	c := bench.BV(4, 0b111)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 0)
	trials := genTrials(t, c, m, 10, 22)
	if _, err := Parallel(c, trials, 0, Options{}); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := Parallel(c, nil, 2, Options{}); err == nil {
		t.Error("empty trials accepted")
	}
	// More workers than trials is clamped, not an error.
	if _, err := Parallel(c, trials, 100, Options{}); err != nil {
		t.Errorf("worker clamp failed: %v", err)
	}
}

func TestParallelKeepStates(t *testing.T) {
	c := bench.WState3()
	m := noise.Uniform("u", 3, 1e-2, 5e-2, 0)
	trials := genTrials(t, c, m, 50, 23)
	par, err := Parallel(c, trials, 4, Options{KeepStates: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Baseline(c, trials, Options{KeepStates: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trials {
		if par.FinalStates[tr.ID] == nil {
			t.Fatalf("missing state for trial %d", tr.ID)
		}
		if !par.FinalStates[tr.ID].Equal(base.FinalStates[tr.ID], 1e-12) {
			t.Fatalf("trial %d parallel state differs from baseline", tr.ID)
		}
	}
}

// TestBudgetedExecutionEquivalence: executing a memory-budgeted plan gives
// bit-identical outcomes to the baseline, with bounded stored vectors.
func TestBudgetedExecutionEquivalence(t *testing.T) {
	c := bench.Grover3()
	m := noise.Uniform("u", 3, 5e-3, 5e-2, 2e-2)
	trials := genTrials(t, c, m, 300, 24)
	base, err := Baseline(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{0, 1, 2, 5} {
		plan, err := reorder.BuildPlanBudget(c, trials, budget)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ExecutePlan(c, plan, Options{})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if !EqualOutcomes(base, res) {
			t.Errorf("budget %d: outcomes differ from baseline", budget)
		}
		if res.MSV > budget {
			t.Errorf("budget %d: executed MSV %d exceeds budget", budget, res.MSV)
		}
		if res.Ops != plan.OptimizedOps() {
			t.Errorf("budget %d: executed ops %d != planned %d", budget, res.Ops, plan.OptimizedOps())
		}
	}
}

// TestBudgetedEquivalenceProperty fuzzes budgets and trial sets.
func TestBudgetedEquivalenceProperty(t *testing.T) {
	f := func(seed int64, budgetRaw uint8) bool {
		budget := int(budgetRaw % 6)
		rng := rand.New(rand.NewSource(seed))
		c := bench.QV(3, 2, rng)
		m := noise.Uniform("u", 3, rng.Float64()*0.05, rng.Float64()*0.2, rng.Float64()*0.05)
		g, err := genOK(c, m)
		if err != nil {
			return false
		}
		trials := g.Generate(rng, 80)
		base, err := Baseline(c, trials, Options{})
		if err != nil {
			return false
		}
		plan, err := reorder.BuildPlanBudget(c, trials, budget)
		if err != nil {
			return false
		}
		res, err := ExecutePlan(c, plan, Options{})
		if err != nil {
			return false
		}
		return EqualOutcomes(base, res) && res.MSV <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
