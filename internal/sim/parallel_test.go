package sim

import (
	"sync"
	"testing"
	"testing/quick"

	"math/rand"

	"repro/internal/bench"
	"repro/internal/noise"
	"repro/internal/reorder"
)

func TestParallelMatchesSequential(t *testing.T) {
	c := bench.QFT(4)
	m := noise.Uniform("u", 4, 5e-3, 5e-2, 2e-2)
	trials := genTrials(t, c, m, 600, 20)
	seq, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		par, err := Parallel(c, trials, workers, Options{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !EqualOutcomes(seq, par) {
			t.Errorf("workers=%d: outcomes differ from sequential", workers)
		}
		if par.Ops < seq.Ops {
			t.Errorf("workers=%d: parallel ops %d below sequential %d", workers, par.Ops, seq.Ops)
		}
	}
}

func TestParallelSingleWorkerIdenticalCost(t *testing.T) {
	c := bench.BV(4, 0b111)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 300, 21)
	seq, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Parallel(c, trials, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if par.Ops != seq.Ops || par.MSV != seq.MSV {
		t.Errorf("1-worker parallel (%d ops, %d MSV) != sequential (%d, %d)",
			par.Ops, par.MSV, seq.Ops, seq.MSV)
	}
}

func TestParallelValidation(t *testing.T) {
	c := bench.BV(4, 0b111)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 0)
	trials := genTrials(t, c, m, 10, 22)
	if _, err := Parallel(c, trials, 0, Options{}); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := Parallel(c, nil, 2, Options{}); err == nil {
		t.Error("empty trials accepted")
	}
	// More workers than trials is fine: surplus workers get empty chunks.
	if _, err := Parallel(c, trials, 100, Options{}); err != nil {
		t.Errorf("surplus workers rejected: %v", err)
	}
}

// TestParallelWorkersExceedTrials drives the empty-chunk path hard: with
// more workers than trials, surplus workers contribute nil partial
// results that the merge must skip, while outcomes stay bit-identical to
// the sequential run and every trial is emitted exactly once.
func TestParallelWorkersExceedTrials(t *testing.T) {
	c := bench.BV(4, 0b101)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 1e-2)
	for _, nTrials := range []int{1, 2, 7} {
		trials := genTrials(t, c, m, nTrials, int64(30+nTrials))
		seq, err := Reordered(c, trials, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{nTrials, nTrials + 1, 3 * nTrials, 64} {
			par, err := Parallel(c, trials, workers, Options{})
			if err != nil {
				t.Fatalf("trials=%d workers=%d: %v", nTrials, workers, err)
			}
			if !EqualOutcomes(seq, par) {
				t.Errorf("trials=%d workers=%d: outcomes differ from sequential", nTrials, workers)
			}
			if len(par.Outcomes) != nTrials {
				t.Errorf("trials=%d workers=%d: %d outcomes", nTrials, workers, len(par.Outcomes))
			}
			total := 0
			for _, n := range par.Counts {
				total += n
			}
			if total != nTrials {
				t.Errorf("trials=%d workers=%d: counts sum to %d", nTrials, workers, total)
			}
		}
	}
}

// TestParallelWorkersEqualTrials pins the one-trial-per-chunk boundary:
// every chunk holds exactly one trial, so no intra-chunk sharing exists
// and total ops equal the baseline cost.
func TestParallelWorkersEqualTrials(t *testing.T) {
	c := bench.BV(4, 0b111)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 8, 41)
	base, err := Baseline(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Parallel(c, trials, len(trials), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualOutcomes(base, par) {
		t.Error("outcomes differ from baseline")
	}
	if par.Ops != base.Ops {
		t.Errorf("one-trial chunks: parallel ops %d != baseline %d", par.Ops, base.Ops)
	}
}

// TestParallelMergeBitIdentical: the merged Counts and Outcomes of a
// heavily parallel run equal the sequential run field by field, and the
// concurrent MSV high-water tracker reports a sane value under -race.
func TestParallelMergeBitIdentical(t *testing.T) {
	c := bench.QFT(4)
	m := noise.Uniform("u", 4, 5e-3, 5e-2, 2e-2)
	trials := genTrials(t, c, m, 400, 42)
	seq, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Parallel(c, trials, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Outcomes) != len(seq.Outcomes) {
		t.Fatalf("outcome count %d != %d", len(par.Outcomes), len(seq.Outcomes))
	}
	for i := range seq.Outcomes {
		if par.Outcomes[i] != seq.Outcomes[i] {
			t.Fatalf("outcome %d differs: %+v vs %+v", i, par.Outcomes[i], seq.Outcomes[i])
		}
	}
	if len(par.Counts) != len(seq.Counts) {
		t.Fatalf("count keys %d != %d", len(par.Counts), len(seq.Counts))
	}
	for bits, n := range seq.Counts {
		if par.Counts[bits] != n {
			t.Errorf("counts[%b] = %d, want %d", bits, par.Counts[bits], n)
		}
	}
	if par.MSV < 1 || par.MSV > seq.MSV*16 {
		t.Errorf("parallel MSV %d implausible (sequential %d, 16 workers)", par.MSV, seq.MSV)
	}
}

// TestMSVTrackerConcurrentHighWater hammers the tracker from many
// goroutines (the -race gate) and checks the peak is at least the
// documented lower bound and at most the arithmetic maximum.
func TestMSVTrackerConcurrentHighWater(t *testing.T) {
	var tr msvTracker
	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.add(1)
				tr.add(1)
				tr.add(-1)
				tr.add(-1)
			}
		}()
	}
	wg.Wait()
	hw := tr.highWater()
	// Each goroutine holds at most 2 concurrently; at least one held 2.
	if hw < 2 || hw > 2*workers {
		t.Errorf("high-water %d outside [2, %d]", hw, 2*workers)
	}
	if got := tr.cur.Load(); got != 0 {
		t.Errorf("tracker did not return to zero: %d", got)
	}
}

func TestParallelKeepStates(t *testing.T) {
	c := bench.WState3()
	m := noise.Uniform("u", 3, 1e-2, 5e-2, 0)
	trials := genTrials(t, c, m, 50, 23)
	par, err := Parallel(c, trials, 4, Options{KeepStates: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Baseline(c, trials, Options{KeepStates: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trials {
		if par.FinalStates[tr.ID] == nil {
			t.Fatalf("missing state for trial %d", tr.ID)
		}
		if !par.FinalStates[tr.ID].Equal(base.FinalStates[tr.ID], 1e-12) {
			t.Fatalf("trial %d parallel state differs from baseline", tr.ID)
		}
	}
}

// TestBudgetedExecutionEquivalence: executing a memory-budgeted plan gives
// bit-identical outcomes to the baseline, with bounded stored vectors.
func TestBudgetedExecutionEquivalence(t *testing.T) {
	c := bench.Grover3()
	m := noise.Uniform("u", 3, 5e-3, 5e-2, 2e-2)
	trials := genTrials(t, c, m, 300, 24)
	base, err := Baseline(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{0, 1, 2, 5} {
		plan, err := reorder.BuildPlanBudget(c, trials, budget)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ExecutePlan(c, plan, Options{})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if !EqualOutcomes(base, res) {
			t.Errorf("budget %d: outcomes differ from baseline", budget)
		}
		if res.MSV > budget {
			t.Errorf("budget %d: executed MSV %d exceeds budget", budget, res.MSV)
		}
		if res.Ops != plan.OptimizedOps() {
			t.Errorf("budget %d: executed ops %d != planned %d", budget, res.Ops, plan.OptimizedOps())
		}
	}
}

// TestBudgetedEquivalenceProperty fuzzes budgets and trial sets.
func TestBudgetedEquivalenceProperty(t *testing.T) {
	f := func(seed int64, budgetRaw uint8) bool {
		budget := int(budgetRaw % 6)
		rng := rand.New(rand.NewSource(seed))
		c := bench.QV(3, 2, rng)
		m := noise.Uniform("u", 3, rng.Float64()*0.05, rng.Float64()*0.2, rng.Float64()*0.05)
		g, err := genOK(c, m)
		if err != nil {
			return false
		}
		trials := g.Generate(rng, 80)
		base, err := Baseline(c, trials, Options{})
		if err != nil {
			return false
		}
		plan, err := reorder.BuildPlanBudget(c, trials, budget)
		if err != nil {
			return false
		}
		res, err := ExecutePlan(c, plan, Options{})
		if err != nil {
			return false
		}
		return EqualOutcomes(base, res) && res.MSV <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
