package sim

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/circuit"
	"repro/internal/noise"
)

func loadQASM(t *testing.T, name string) *circuit.Circuit {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "circuit", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	c, err := circuit.ParseQASM(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestQASMToffoliNoiseless: the corpus Toffoli program maps |110> to
// |111> deterministically without noise.
func TestQASMToffoliNoiseless(t *testing.T) {
	c := loadQASM(t, "toffoli.qasm")
	m := noise.NewModel("clean", c.NumQubits())
	trials := genTrials(t, c, m, 50, 30)
	res, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0b111] != 50 {
		t.Errorf("Toffoli counts: %v", res.Counts)
	}
}

// TestQASMGHZParityUnderNoise: a noisy GHZ still shows strong even-parity
// correlation, and baseline/reordered agree exactly.
func TestQASMGHZParityUnderNoise(t *testing.T) {
	c := loadQASM(t, "ghz5.qasm")
	m := noise.Uniform("u", c.NumQubits(), 1e-3, 1e-2, 1e-2)
	trials := genTrials(t, c, m, 3000, 31)
	base, err := Baseline(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reord, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualOutcomes(base, reord) {
		t.Fatal("equivalence violated on QASM input")
	}
	ends := float64(reord.Counts[0b00000]+reord.Counts[0b11111]) / float64(len(trials))
	if ends < 0.8 {
		t.Errorf("GHZ mass on extremes = %g, want > 0.8 at these rates", ends)
	}
}

// TestQASMTeleportMatchesPreparedState: the teleported qubit's measured
// distribution matches the ry(0.9) preparation: P(1) = sin^2(0.45).
func TestQASMTeleportMatchesPreparedState(t *testing.T) {
	c := loadQASM(t, "teleport.qasm")
	m := noise.NewModel("clean", c.NumQubits())
	trials := genTrials(t, c, m, 20000, 32)
	res, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p1 := 0.0
	for bits, n := range res.Counts {
		if bits&0b100 != 0 {
			p1 += float64(n)
		}
	}
	p1 /= float64(len(trials))
	want := math.Pow(math.Sin(0.45), 2)
	if math.Abs(p1-want) > 0.02 {
		t.Errorf("teleported P(1) = %g, want %g", p1, want)
	}
}

// TestQASMQFTEquivalence: the corpus QFT runs identically through both
// simulators under realistic noise.
func TestQASMQFTEquivalence(t *testing.T) {
	c := loadQASM(t, "qft3.qasm")
	m := noise.Uniform("u", c.NumQubits(), 2e-3, 2e-2, 1e-2)
	trials := genTrials(t, c, m, 500, 33)
	base, err := Baseline(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reord, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualOutcomes(base, reord) {
		t.Error("QFT equivalence violated")
	}
}
