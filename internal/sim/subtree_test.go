package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/noise"
	"repro/internal/reorder"
	"repro/internal/trial"
)

// TestSubtreeMatchesSequential: for every worker count, per-trial outcomes
// are bit-identical to the sequential reordered executor and executed ops
// equal the sequential plan's exactly — the property contiguous chunking
// cannot satisfy.
func TestSubtreeMatchesSequential(t *testing.T) {
	circuits := map[string]*circuit.Circuit{
		"bv4":    bench.BV(4, 0b111),
		"grover": bench.Grover3(),
		"qft4":   bench.QFT(4),
	}
	for name, c := range circuits {
		m := noise.Uniform("u", c.NumQubits(), 5e-3, 5e-2, 1e-2)
		trials := genTrials(t, c, m, 400, 21)
		seq, err := Reordered(c, trials, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for workers := 1; workers <= 8; workers++ {
			par, err := ParallelSubtree(c, trials, workers, Options{})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !EqualOutcomes(seq, par) {
				t.Errorf("%s workers=%d: outcomes differ from sequential", name, workers)
			}
			if par.Ops != seq.Ops {
				t.Errorf("%s workers=%d: subtree ops %d != sequential %d (sharing lost)",
					name, workers, par.Ops, seq.Ops)
			}
		}
	}
}

// TestSubtreeVsChunkedOps: chunking recomputes boundary-spanning prefixes,
// so for multiple workers its op count strictly exceeds the sequential
// plan's on a circuit with real sharing, while the subtree decomposition
// matches it exactly.
func TestSubtreeVsChunkedOps(t *testing.T) {
	c := bench.QFT(5)
	m := noise.Uniform("u", 5, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 600, 22)
	seq, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := Parallel(c, trials, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := ParallelSubtree(c, trials, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if chunked.Ops <= seq.Ops {
		t.Errorf("chunked ops %d not above sequential %d (no redundancy to eliminate?)",
			chunked.Ops, seq.Ops)
	}
	if sub.Ops != seq.Ops {
		t.Errorf("subtree ops %d != sequential %d", sub.Ops, seq.Ops)
	}
}

// TestSubtreeExplicitCuts: deeper explicit cuts keep correctness and op
// equality.
func TestSubtreeExplicitCuts(t *testing.T) {
	c := bench.Grover3()
	m := noise.Uniform("u", 3, 1e-2, 5e-2, 2e-2)
	trials := genTrials(t, c, m, 300, 23)
	seq, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut <= 3; cut++ {
		par, err := ParallelSubtreeCut(c, trials, 4, cut, Options{})
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if !EqualOutcomes(seq, par) {
			t.Errorf("cut=%d: outcomes differ", cut)
		}
		if par.Ops != seq.Ops {
			t.Errorf("cut=%d: ops %d != sequential %d", cut, par.Ops, seq.Ops)
		}
	}
}

// TestSubtreeBudget: a snapshot budget caps each component's stack while
// preserving outcomes; ops match the budgeted split plan's static count.
func TestSubtreeBudget(t *testing.T) {
	c := bench.QFT(4)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 400, 24)
	seq, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{0, 1, 2, 4} {
		opt := Options{SnapshotBudget: budget}
		bseq, err := Reordered(c, trials, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !EqualOutcomes(seq, bseq) {
			t.Fatalf("budget=%d: budgeted sequential outcomes differ", budget)
		}
		for _, workers := range []int{2, 5} {
			par, err := ParallelSubtree(c, trials, workers, opt)
			if err != nil {
				t.Fatalf("budget=%d workers=%d: %v", budget, workers, err)
			}
			if !EqualOutcomes(seq, par) {
				t.Errorf("budget=%d workers=%d: outcomes differ", budget, workers)
			}
			sp, err := reorder.SplitPlanCut(c, trials, 1, planBudgetFor(budget))
			if err != nil {
				t.Fatal(err)
			}
			if par.Ops != sp.TotalOps() {
				t.Errorf("budget=%d workers=%d: executed ops %d != static split ops %d",
					budget, workers, par.Ops, sp.TotalOps())
			}
		}
	}
}

// planBudgetFor mirrors Options.planBudget for test-side static plans.
func planBudgetFor(budget int) int {
	if budget <= 0 {
		return math.MaxInt
	}
	return budget
}

// TestSubtreeMSVBounded: with a budget, the concurrent high-water mark of
// stored vectors cannot exceed (components alive at once) x budget; with
// one worker and budget 1 it stays tight.
func TestSubtreeMSVBounded(t *testing.T) {
	c := bench.Grover3()
	m := noise.Uniform("u", 3, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 300, 25)
	for _, budget := range []int{1, 2} {
		for _, workers := range []int{1, 4} {
			par, err := ParallelSubtree(c, trials, workers, Options{SnapshotBudget: budget})
			if err != nil {
				t.Fatal(err)
			}
			// Components alive concurrently: the trunk, each running
			// worker, and up to 2x workers queued entry clones.
			bound := (1 + workers) * budget
			bound += 2 * workers
			if par.MSV > bound {
				t.Errorf("budget=%d workers=%d: MSV %d exceeds bound %d",
					budget, workers, par.MSV, bound)
			}
		}
	}
}

// TestSubtreeKeepStates: final states survive the parallel merge and match
// the sequential executor's.
func TestSubtreeKeepStates(t *testing.T) {
	c := bench.BV(4, 0b101)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 0)
	trials := genTrials(t, c, m, 120, 26)
	seq, err := Reordered(c, trials, Options{KeepStates: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelSubtree(c, trials, 4, Options{KeepStates: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.FinalStates) != len(trials) {
		t.Fatalf("kept %d states, want %d", len(par.FinalStates), len(trials))
	}
	for id, st := range par.FinalStates {
		if !st.Equal(seq.FinalStates[id], 1e-12) {
			t.Errorf("trial %d: final state differs from sequential", id)
		}
	}
}

// TestSubtreeValidation covers argument errors.
func TestSubtreeValidation(t *testing.T) {
	c := bench.Grover3()
	m := noise.Uniform("u", 3, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 10, 27)
	if _, err := ParallelSubtree(c, trials, 0, Options{}); err == nil {
		t.Error("workers=0 accepted")
	}
	if _, err := ParallelSubtree(c, nil, 2, Options{}); err == nil {
		t.Error("empty trial set accepted")
	}
	if _, err := ParallelSubtreeCut(c, trials, 2, -1, Options{}); err == nil {
		t.Error("negative cut accepted")
	}
}

// TestSubtreeProperty fuzzes circuits x error rates x workers x budgets:
// outcomes bit-identical to sequential Reordered, and total executed ops
// equal to the sequential plan's when unbudgeted.
func TestSubtreeProperty(t *testing.T) {
	f := func(seed int64, wRaw, bRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := bench.QV(4, 3, rng)
		workers := 1 + int(wRaw%8)
		budgets := []int{0, 1, 2, 3, 4}
		budget := budgets[int(bRaw)%len(budgets)]
		p2 := []float64{1e-2, 5e-2, 1e-1}[int(pRaw)%3]
		m := noise.Uniform("u", 4, p2/5, p2, p2/2)
		g, err := trial.NewGenerator(c, m)
		if err != nil {
			return false
		}
		trials := g.Generate(rng, 150)
		seq, err := Reordered(c, trials, Options{})
		if err != nil {
			return false
		}
		par, err := ParallelSubtree(c, trials, workers, Options{SnapshotBudget: budget})
		if err != nil {
			return false
		}
		if !EqualOutcomes(seq, par) {
			return false
		}
		if budget == 0 && par.Ops != seq.Ops {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestExecuteSplitPlanDirect drives the executor with a prebuilt plan and
// checks the merged metrics against the plan's static analysis.
func TestExecuteSplitPlanDirect(t *testing.T) {
	c := bench.QFT(4)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 300, 28)
	sp, err := reorder.SplitPlanCut(c, trials, 2, math.MaxInt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteSplitPlan(c, sp, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != sp.TotalOps() {
		t.Errorf("executed ops %d != static %d", res.Ops, sp.TotalOps())
	}
	if len(res.Outcomes) != len(trials) {
		t.Errorf("emitted %d outcomes, want %d", len(res.Outcomes), len(trials))
	}
	for i := 1; i < len(res.Outcomes); i++ {
		if res.Outcomes[i-1].TrialID >= res.Outcomes[i].TrialID {
			t.Fatal("outcomes not sorted by trial ID after merge")
		}
	}
}
