package sim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/circuit"
	"repro/internal/obs"
	"repro/internal/reorder"
	"repro/internal/statevec"
	"repro/internal/trial"
)

// Batched subtree execution. Sibling subtree tasks spawned from the same
// trunk state execute the same layer ranges after the fork; the single-lane
// executor dispatches those fused kernels one state at a time. Here a
// worker claims a whole spawn group, packs the tasks' working registers
// into the lanes of one statevec.BatchState (structure of arrays), and
// advances every common layer range through Program.RunBatch — one
// cache-blocked pass per compiled segment across all lanes. Everything
// that is per-trial or per-branch (pushes, injections, emits, pops,
// restores) still executes lane-by-lane with the exact arithmetic of
// runSubtree, so outcomes, forward op counts and emitted trials are
// identical to single-lane execution (bit-identical in non-numeric fuse
// modes) at every lane and worker count.

// ExecuteBatchedSubtree is ParallelSubtree with the batched SoA engine:
// the trunk groups up to `lanes` consecutively spawned sibling tasks and
// workers execute each group's shared suffix segments in lockstep.
// lanes <= 1 degenerates to plain ParallelSubtree. This is the executor
// behind qsim's `-par subtree-batched`.
func ExecuteBatchedSubtree(c *circuit.Circuit, trials []*trial.Trial, workers, lanes int, opt Options) (*Result, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("sim: lane count %d < 1", lanes)
	}
	opt.Lanes = lanes
	return ParallelSubtree(c, trials, workers, opt)
}

// runTaskGroup executes one popped spawn group. Groups of one, and every
// group under a non-snapshot restore policy (whose journaled rollbacks are
// inherently per-lane), run tasks sequentially through the single-lane
// path; larger snapshot-policy groups go through the batched engine.
func runTaskGroup(c *circuit.Circuit, sp *reorder.SplitPlan, prog *statevec.Program, qt queuedTask, opt Options, res *Result, tr *msvTracker, pool *statePool, br *batchRunner, wid int) error {
	if br == nil || len(qt.tasks) == 1 || opt.Policy != PolicySnapshot {
		for i, st := range qt.tasks {
			if err := runSubtree(c, sp, prog, st, qt.entries[i], opt, res, tr, pool, wid); err != nil {
				return err
			}
		}
		return nil
	}
	return br.run(c, sp, prog, qt, opt, res, tr, pool, wid)
}

// laneExec is one lane's execution state within a task group: the task,
// its step cursor, and the per-lane snapshot stack mirroring runSubtree's.
type laneExec struct {
	st        *reorder.Subtree
	pc        int
	stack     []*statevec.State
	pushTimes []time.Time // shadows stack above the entry floor
	floor     int
	emitted   int
	emitMark  time.Time
	done      bool
}

// batchRunner is a worker's reusable batched-execution state: the
// lane-packed SoA register plus scratch for grouping lanes by their next
// layer range. One runner lives per worker goroutine, so the steady-state
// group loop performs no heap allocations.
type batchRunner struct {
	arena   *statevec.BufferPool
	batch   *statevec.BatchState
	amps    [][]complex128 // all lane amplitude slices, cached once
	lanes   []laneExec
	sweep   [][]complex128 // lanes of the current RunBatch subgroup
	members []int          // lane indices of the current subgroup
	pending []int          // lanes stopped at a StepAdvance this round
	rest    []int          // pending lanes deferred to a later subgroup
}

func newBatchRunner(qubits, lanes int, arena *statevec.BufferPool) *batchRunner {
	batch := arena.GetBatch(qubits, lanes)
	return &batchRunner{
		arena:   arena,
		batch:   batch,
		amps:    batch.LaneAmps(lanes),
		lanes:   make([]laneExec, lanes),
		sweep:   make([][]complex128, 0, lanes),
		members: make([]int, 0, lanes),
		pending: make([]int, 0, lanes),
		rest:    make([]int, 0, lanes),
	}
}

// release returns the batch register to the arena when the worker exits.
func (r *batchRunner) release() { r.arena.PutBatch(r.batch) }

// run executes one spawn group: load each entry into a lane, then
// alternate between draining per-lane steps up to the next StepAdvance and
// sweeping groups of lanes that share the same layer range through one
// batched segment execution. Lanes whose next range differs (divergent
// branch structure below the cut) simply sweep in smaller subgroups.
func (r *batchRunner) run(c *circuit.Circuit, sp *reorder.SplitPlan, prog *statevec.Program, qt queuedTask, opt Options, res *Result, tr *msvTracker, pool *statePool, wid int) error {
	rec := opt.Recorder
	n := len(qt.tasks)
	keepEntry := sp.Budget() != math.MaxInt && sp.Budget() >= 1
	for i := 0; i < n; i++ {
		le := &r.lanes[i]
		*le = laneExec{st: qt.tasks[i], stack: le.stack[:0], pushTimes: le.pushTimes[:0]}
		lane := r.batch.Lane(i)
		entry := qt.entries[i]
		lane.CopyFrom(entry)
		res.Copies++
		if keepEntry {
			// The pristine entry stays at the stack floor — the replay
			// floor for StepRestore — exactly as in runSubtree.
			le.stack = append(le.stack, entry)
			le.floor = 1
		} else {
			// A lane cannot adopt the entry the way runSubtree's working
			// register does (lanes are pinned stripes of the batch
			// buffer), so the clone is copied in and released at once.
			tr.add(-1)
			pool.put(entry)
		}
		if rec != nil {
			le.emitMark = time.Now()
		}
	}
	active := n
	for active > 0 {
		r.pending = r.pending[:0]
		for i := 0; i < n; i++ {
			le := &r.lanes[i]
			if le.done {
				continue
			}
			if err := r.drain(i, c, sp, opt, res, tr, pool, wid); err != nil {
				return err
			}
			if le.done {
				active--
			} else {
				r.pending = append(r.pending, i)
			}
		}
		for len(r.pending) > 0 {
			lead := r.lanes[r.pending[0]]
			want := lead.st.Steps[lead.pc]
			r.sweep = r.sweep[:0]
			r.members = r.members[:0]
			r.rest = r.rest[:0]
			for _, i := range r.pending {
				le := &r.lanes[i]
				if s := le.st.Steps[le.pc]; s.From == want.From && s.To == want.To {
					r.sweep = append(r.sweep, r.amps[i])
					r.members = append(r.members, i)
				} else {
					r.rest = append(r.rest, i)
				}
			}
			segOps := prog.RunBatch(r.sweep, want.From, want.To)
			res.Ops += int64(segOps) * int64(len(r.members))
			for _, i := range r.members {
				r.lanes[i].pc++
			}
			r.pending, r.rest = r.rest, r.pending
		}
	}
	return nil
}

// drain executes lane i's steps up to (exclusive) its next StepAdvance or
// through the end of its task. The step semantics mirror runSubtree's; the
// only difference is that pops and the entry load copy into the pinned
// lane register instead of adopting a pointer, which changes Copies but no
// amplitude bit and no forward op count.
func (r *batchRunner) drain(i int, c *circuit.Circuit, sp *reorder.SplitPlan, opt Options, res *Result, tr *msvTracker, pool *statePool, wid int) error {
	le := &r.lanes[i]
	lane := r.batch.Lane(i)
	rec := opt.Recorder
	for le.pc < len(le.st.Steps) {
		s := le.st.Steps[le.pc]
		switch s.Kind {
		case reorder.StepAdvance:
			return nil // the batched phase advances this lane
		case reorder.StepPush:
			snap := pool.get()
			snap.CopyFrom(lane)
			le.stack = append(le.stack, snap)
			res.Copies++
			tr.add(1)
			if rec != nil {
				rec.Add(obs.SnapshotPushes, 1)
				rec.Event(obs.EvPush, wid, len(le.stack))
				le.pushTimes = append(le.pushTimes, time.Now())
			}
		case reorder.StepInject:
			lane.ApplyPauli(s.Op, s.Qubit)
			res.Ops++
		case reorder.StepEmit:
			for _, idx := range s.Trials {
				t := sp.Order[idx]
				res.Outcomes = append(res.Outcomes, Outcome{TrialID: t.ID, Bits: sampleOutcome(lane, c, t)})
				le.emitted++
				if opt.KeepStates {
					res.FinalStates[t.ID] = lane.Clone()
				}
			}
			if rec != nil {
				rec.Add(obs.TrialsEmitted, int64(len(s.Trials)))
				rec.Event(obs.EvEmit, wid, len(le.stack))
				now := time.Now()
				if b := len(s.Trials); b > 0 {
					per := int64(now.Sub(le.emitMark)) / int64(b)
					for j := 0; j < b; j++ {
						rec.Observe(obs.HistTrialLatency, per)
					}
				}
				le.emitMark = now
			}
		case reorder.StepPop:
			if len(le.stack) <= le.floor {
				return fmt.Errorf("sim: task %d pops below its entry floor", le.st.ID)
			}
			top := le.stack[len(le.stack)-1]
			le.stack = le.stack[:len(le.stack)-1]
			lane.CopyFrom(top)
			res.Copies++
			pool.put(top)
			tr.add(-1)
			if rec != nil {
				rec.Add(obs.SnapshotDrops, 1)
				rec.Event(obs.EvDrop, wid, len(le.stack))
				rec.Observe(obs.HistSnapshotLifetime, int64(time.Since(le.pushTimes[len(le.pushTimes)-1])))
				le.pushTimes = le.pushTimes[:len(le.pushTimes)-1]
			}
		case reorder.StepRestore:
			if len(le.stack) == 0 {
				lane.Reset()
			} else {
				lane.CopyFrom(le.stack[len(le.stack)-1])
				res.Copies++
			}
			if rec != nil {
				rec.Add(obs.SnapshotRestores, 1)
				rec.Event(obs.EvRestore, wid, len(le.stack))
				rec.Observe(obs.HistRestoreDepth, int64(len(le.stack)))
			}
		default:
			return fmt.Errorf("sim: invalid subtree step %v", s.Kind)
		}
		le.pc++
	}
	if len(le.stack) != le.floor {
		return fmt.Errorf("sim: task %d leaves %d snapshots stored", le.st.ID, len(le.stack)-le.floor)
	}
	if le.emitted != le.st.Trials {
		return fmt.Errorf("sim: task %d emitted %d of %d trials", le.st.ID, le.emitted, le.st.Trials)
	}
	for _, snap := range le.stack {
		tr.add(-1) // the preserved entry is dropped with the task
		pool.put(snap)
	}
	le.stack = le.stack[:0]
	le.done = true
	return nil
}
