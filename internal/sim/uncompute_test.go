package sim

import (
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/reorder"
	"repro/internal/statevec"
)

// policyCircuits are the shared workloads for the restore-policy tests:
// real benchmark circuits whose gates are NOT exactly invertible (H,
// rotations), so exact-mode rollbacks exercise the replay path, plus a
// permutation-only circuit that exercises true reverse execution on the
// bit-exact path.
func policyCircuits() map[string]*circuit.Circuit {
	return map[string]*circuit.Circuit{
		"qft3":   bench.QFT(3),
		"grover": bench.Grover3(),
		"bv4":    bench.BV(4, 0b101),
	}
}

func outcomesAndStatesIdentical(t *testing.T, name string, want, got *Result) {
	t.Helper()
	if !EqualOutcomes(want, got) {
		t.Fatalf("%s: outcomes differ", name)
	}
	for id, ws := range want.FinalStates {
		gs := got.FinalStates[id]
		if gs == nil {
			t.Fatalf("%s: missing final state for trial %d", name, id)
		}
		wa, ga := ws.Amplitudes(), gs.Amplitudes()
		for i := range wa {
			if math.Float64bits(real(wa[i])) != math.Float64bits(real(ga[i])) ||
				math.Float64bits(imag(wa[i])) != math.Float64bits(imag(ga[i])) {
				t.Fatalf("%s: trial %d amplitude %d not bit-identical", name, id, i)
			}
		}
	}
}

// TestPolicyBitIdenticalOutcomes: uncompute and adaptive executions must
// reproduce the snapshot executor's outcomes and final states
// Float64bits-identical, across budgets and fusion modes on the
// bit-exact path.
func TestPolicyBitIdenticalOutcomes(t *testing.T) {
	for name, c := range policyCircuits() {
		m := noise.Uniform("u", c.NumQubits(), 5e-3, 5e-2, 2e-2)
		trials := genTrials(t, c, m, 200, 11)
		ref, err := Reordered(c, trials, Options{KeepStates: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, budget := range []int{0, 1, 2} {
			for _, fuse := range []statevec.FuseMode{statevec.FuseOff, statevec.FuseExact} {
				for _, pol := range []RestorePolicy{PolicyUncompute, PolicyAdaptive} {
					opt := Options{KeepStates: true, SnapshotBudget: budget, Fuse: fuse, Policy: pol}
					res, err := Reordered(c, trials, opt)
					if err != nil {
						t.Fatalf("%s %v budget %d: %v", name, pol, budget, err)
					}
					outcomesAndStatesIdentical(t, name, ref, res)
				}
			}
		}
	}
}

// TestPolicyUncomputeZeroSnapshots: the pure-uncompute policy stores
// nothing — no snapshot pushes, zero MSV, zero copies — on a sequential
// plan execution.
func TestPolicyUncomputeZeroSnapshots(t *testing.T) {
	c := bench.QFT(3)
	m := noise.Uniform("u", 3, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 300, 13)
	met := obs.NewMetrics()
	res, err := Reordered(c, trials, Options{Policy: PolicyUncompute, Recorder: met})
	if err != nil {
		t.Fatal(err)
	}
	if res.MSV != 0 {
		t.Errorf("PolicyUncompute MSV = %d, want 0", res.MSV)
	}
	if res.Copies != 0 {
		t.Errorf("PolicyUncompute copies = %d, want 0", res.Copies)
	}
	if got := met.Counter(obs.SnapshotPushes); got != 0 {
		t.Errorf("snapshot_pushes = %d, want 0", got)
	}
	if got := met.Counter(obs.PolicySnapshotDecisions); got != 0 {
		t.Errorf("policy_snapshot decisions = %d, want 0", got)
	}
	if got := met.Counter(obs.PolicyUncomputeDecisions); got == 0 {
		t.Error("policy_uncompute decisions = 0, want > 0")
	}
}

// TestAdaptiveOpsMonotoneInBudget: under PolicyAdaptive, total executed
// work (forward + uncompute) never increases as the snapshot budget
// grows — more stored frames can only shorten rollbacks.
func TestAdaptiveOpsMonotoneInBudget(t *testing.T) {
	c := bench.QFT(4)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 400, 17)
	var prev int64 = math.MaxInt64
	for _, budget := range []int{1, 2, 3, 4, 6, 0} { // 0 = unlimited, the loosest
		res, err := Reordered(c, trials, Options{Policy: PolicyAdaptive, SnapshotBudget: budget})
		if err != nil {
			t.Fatal(err)
		}
		total := res.Ops + res.UncomputeOps
		if total > prev {
			t.Errorf("budget %d: total ops %d > previous (tighter) budget's %d", budget, total, prev)
		}
		prev = total
	}
}

// TestAdaptiveNeverWorseThanFixed: for any budget, adaptive total work is
// bounded by the pure-uncompute policy's (they see identical branch
// points; adaptive only replaces rollbacks with snapshot adoption).
func TestAdaptiveNeverWorseThanFixed(t *testing.T) {
	c := bench.QFT(4)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 300, 19)
	unc, err := Reordered(c, trials, Options{Policy: PolicyUncompute, Fuse: statevec.FuseNumeric})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{1, 2, 0} {
		ada, err := Reordered(c, trials, Options{Policy: PolicyAdaptive, SnapshotBudget: budget, Fuse: statevec.FuseNumeric})
		if err != nil {
			t.Fatal(err)
		}
		if ada.Ops+ada.UncomputeOps > unc.Ops+unc.UncomputeOps {
			t.Errorf("budget %d: adaptive total %d > uncompute total %d",
				budget, ada.Ops+ada.UncomputeOps, unc.Ops+unc.UncomputeOps)
		}
	}
}

// TestPolicyDecisionsReproducible: policy decision counts are a pure
// function of the workload — two identical runs record identical
// decision counters.
func TestPolicyDecisionsReproducible(t *testing.T) {
	c := bench.QFT(4)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 300, 23)
	counts := func() (int64, int64) {
		met := obs.NewMetrics()
		if _, err := Reordered(c, trials, Options{Policy: PolicyAdaptive, SnapshotBudget: 2, Recorder: met}); err != nil {
			t.Fatal(err)
		}
		return met.Counter(obs.PolicySnapshotDecisions), met.Counter(obs.PolicyUncomputeDecisions)
	}
	s1, u1 := counts()
	s2, u2 := counts()
	if s1 != s2 || u1 != u2 {
		t.Errorf("decision counts not reproducible: (%d,%d) vs (%d,%d)", s1, u1, s2, u2)
	}
	if s1+u1 == 0 {
		t.Error("workload produced no branch points — test is vacuous")
	}
}

// TestUncomputeAccountingSeparate: reverse ops are reported in
// UncomputeOps, never in Ops. Under FuseNumeric every rollback
// reverse-executes, so the forward count equals the unbudgeted plan's
// OptimizedOps exactly; legacy snapshot executions report zero
// uncompute ops.
func TestUncomputeAccountingSeparate(t *testing.T) {
	c := bench.QFT(4)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 400, 29)
	plan, err := reorder.BuildPlan(c, trials)
	if err != nil {
		t.Fatal(err)
	}
	met := obs.NewMetrics()
	res, err := Reordered(c, trials, Options{Policy: PolicyUncompute, Fuse: statevec.FuseNumeric, Recorder: met})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != plan.OptimizedOps() {
		t.Errorf("numeric uncompute forward ops = %d, want plan's %d", res.Ops, plan.OptimizedOps())
	}
	if res.UncomputeOps == 0 {
		t.Error("numeric uncompute executed zero reverse ops — test is vacuous")
	}
	if got := met.Counter(obs.UncomputeOps); got != res.UncomputeOps {
		t.Errorf("uncompute_ops counter %d != result %d", got, res.UncomputeOps)
	}
	if got := met.Counter(obs.Ops); got != res.Ops {
		t.Errorf("ops counter %d != result %d", got, res.Ops)
	}

	// Legacy snapshot executors never uncompute.
	for name, run := range map[string]func() (*Result, error){
		"plan":    func() (*Result, error) { return Reordered(c, trials, Options{}) },
		"chunked": func() (*Result, error) { return Parallel(c, trials, 2, Options{}) },
		"subtree": func() (*Result, error) { return ParallelSubtree(c, trials, 2, Options{}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.UncomputeOps != 0 {
			t.Errorf("%s: UncomputeOps = %d, want 0", name, res.UncomputeOps)
		}
	}
}

// TestPolicyParallelExecutors: the policy threads through the chunked
// and subtree executors — outcomes stay bit-identical to the sequential
// snapshot reference, and pure uncompute keeps snapshot_pushes at 0 at
// every worker count.
func TestPolicyParallelExecutors(t *testing.T) {
	c := bench.QFT(4)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 300, 31)
	ref, err := Reordered(c, trials, Options{KeepStates: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		for _, pol := range []RestorePolicy{PolicyUncompute, PolicyAdaptive} {
			met := obs.NewMetrics()
			opt := Options{KeepStates: true, Policy: pol, SnapshotBudget: 1, Recorder: met}
			sub, err := ParallelSubtree(c, trials, workers, opt)
			if err != nil {
				t.Fatalf("subtree %d %v: %v", workers, pol, err)
			}
			outcomesAndStatesIdentical(t, "subtree", ref, sub)
			if pol == PolicyUncompute {
				if got := met.Counter(obs.SnapshotPushes); got != 0 {
					t.Errorf("subtree %dw uncompute: snapshot_pushes = %d, want 0", workers, got)
				}
			}
			chk, err := Parallel(c, trials, workers, opt)
			if err != nil {
				t.Fatalf("chunked %d %v: %v", workers, pol, err)
			}
			outcomesAndStatesIdentical(t, "chunked", ref, chk)
		}
	}
}

// observeCapture records every Observe call for one histogram.
type observeCapture struct {
	mu   sync.Mutex
	hist obs.Hist
	vals []int64
}

func (o *observeCapture) Add(obs.Counter, int64)             {}
func (o *observeCapture) SetMax(obs.Gauge, int64)            {}
func (o *observeCapture) PhaseDone(obs.Phase, time.Duration) {}
func (o *observeCapture) Event(obs.EventKind, int, int)      {}
func (o *observeCapture) Observe(h obs.Hist, v int64) {
	if h != o.hist {
		return
	}
	o.mu.Lock()
	o.vals = append(o.vals, v)
	o.mu.Unlock()
}

// TestBranchRollbackOpsAgreement: the planner's static per-branch
// rollback costs (reorder.BranchRollbackOps) must match the uncompute
// executor's measured rollback segments exactly. FuseNumeric makes every
// rollback a reverse execution, so the captured uncompute_depth
// observations are the dynamic counterpart of the static values.
func TestBranchRollbackOpsAgreement(t *testing.T) {
	c := bench.QFT(4)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 400, 37)
	plan, err := reorder.BuildPlan(c, trials)
	if err != nil {
		t.Fatal(err)
	}
	static := plan.BranchRollbackOps()
	if int64(len(static)) != plan.Copies() {
		t.Fatalf("BranchRollbackOps returned %d entries, plan has %d pushes", len(static), plan.Copies())
	}
	cap := &observeCapture{hist: obs.HistUncomputeDepth}
	res, err := ExecutePlan(c, plan, Options{Policy: PolicyUncompute, Fuse: statevec.FuseNumeric, Recorder: cap})
	if err != nil {
		t.Fatal(err)
	}
	var wantVals []int64
	var sum int64
	for _, v := range static {
		sum += v
		if v > 0 {
			wantVals = append(wantVals, v)
		}
	}
	if res.UncomputeOps != sum {
		t.Errorf("total uncompute ops %d != static sum %d", res.UncomputeOps, sum)
	}
	got := append([]int64(nil), cap.vals...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(wantVals, func(i, j int) bool { return wantVals[i] < wantVals[j] })
	if len(got) != len(wantVals) {
		t.Fatalf("measured %d rollback segments, static predicts %d", len(got), len(wantVals))
	}
	for i := range got {
		if got[i] != wantVals[i] {
			t.Fatalf("rollback size multiset differs at %d: measured %d, static %d", i, got[i], wantVals[i])
		}
	}
}

// TestSamplerMemProbe: the probe reports pressure iff the sampler's most
// recent heap sample exceeds the limit, and an adaptive run under
// constant pressure keeps at most two real frames per component.
func TestSamplerMemProbe(t *testing.T) {
	if probe := SamplerMemProbe(nil, 0); probe() {
		t.Error("nil sampler must report no pressure")
	}
	c := bench.QFT(4)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 300, 41)
	pressured := Options{
		Policy:   PolicyAdaptive,
		MemProbe: func() bool { return true },
	}
	res, err := Reordered(c, trials, pressured)
	if err != nil {
		t.Fatal(err)
	}
	if res.MSV > 2 {
		t.Errorf("adaptive under constant pressure stored %d frames, want <= 2", res.MSV)
	}
	ref, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualOutcomes(ref, res) {
		t.Error("outcomes differ under memory pressure")
	}
}
