package sim

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/reorder"
	"repro/internal/statevec"
	"repro/internal/trace"
)

// The tracing contract mirrors the observability contract: a span tree
// attached to any executor never changes a Result, and the structural
// spans it records reconcile exactly with the obs counters — one
// "segment_compile" span per segment-cache miss, no spans for hits.

// countSpans tallies span names across a finished trace.
func countSpans(tr *trace.Trace) map[string]int {
	out := make(map[string]int)
	for _, sp := range tr.Spans() {
		out[sp.Name()]++
	}
	return out
}

// TestSegmentCompileSpansMatchMisses is the agreement gate: the number
// of segment_compile spans equals obs.SegCacheMisses exactly, on a cold
// cache and (vacuously, zero == zero) on a warm one.
func TestSegmentCompileSpansMatchMisses(t *testing.T) {
	c := bench.QV(5, 3, rand.New(rand.NewSource(7)))
	m := device.Yorktown().Model()
	trials := genTrials(t, c, m, 300, 11)
	plan, err := reorder.BuildPlan(c, trials)
	if err != nil {
		t.Fatal(err)
	}
	statevec.ResetSegmentCache()
	t.Cleanup(statevec.ResetSegmentCache)

	run := func(policy RestorePolicy) (map[string]int, int64, *Result) {
		t.Helper()
		tracer := trace.New(trace.Config{Seed: 1})
		rec := obs.NewMetrics()
		root := tracer.Start("test", trace.SpanContext{})
		res, err := ExecutePlan(c, plan, Options{
			Fuse:     statevec.FuseExact,
			Policy:   policy,
			Recorder: rec,
			Span:     root,
		})
		if err != nil {
			t.Fatal(err)
		}
		root.End()
		return countSpans(root.Trace()), rec.Counter(obs.SegCacheMisses), res
	}

	// Cold cache: every segment compile is a miss, and every miss opens
	// exactly one span.
	names, misses, cold := run(PolicySnapshot)
	if misses == 0 {
		t.Fatal("cold run recorded no segment-cache misses")
	}
	if got := int64(names["segment_compile"]); got != misses {
		t.Fatalf("segment_compile spans = %d, segcache misses = %d", got, misses)
	}

	// Warm cache: all hits, so zero misses and zero compile spans.
	names, misses, warm := run(PolicySnapshot)
	if misses != 0 {
		t.Fatalf("warm run recorded %d misses, want 0", misses)
	}
	if got := names["segment_compile"]; got != 0 {
		t.Fatalf("warm run opened %d segment_compile spans, want 0", got)
	}
	if cold.Ops != warm.Ops || cold.Ops != plan.OptimizedOps() {
		t.Fatalf("ops cold %d warm %d, want %d", cold.Ops, warm.Ops, plan.OptimizedOps())
	}

	// The uncompute policy compiles reverse segments too; the agreement
	// must hold across both compile directions.
	statevec.ResetSegmentCache()
	names, misses, _ = run(PolicyUncompute)
	if misses == 0 {
		t.Fatal("uncompute run recorded no segment-cache misses")
	}
	if got := int64(names["segment_compile"]); got != misses {
		t.Fatalf("uncompute: segment_compile spans = %d, segcache misses = %d", got, misses)
	}
}

// TestTracedExecutorsInvariant attaches a live span tree to the
// subtree-parallel executor at several worker counts: results must be
// bit-identical to the untraced run, ops must stay at the static plan
// count, and sibling workers creating spans concurrently must be clean
// under -race.
func TestTracedExecutorsInvariant(t *testing.T) {
	c := bench.QV(5, 4, rand.New(rand.NewSource(3)))
	m := device.Yorktown().Model()
	trials := genTrials(t, c, m, 300, 5)
	plan, err := reorder.BuildPlan(c, trials)
	if err != nil {
		t.Fatal(err)
	}
	static := plan.OptimizedOps()

	base, err := ExecutePlan(c, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		tracer := trace.New(trace.Config{Seed: uint64(workers)})
		root := tracer.Start("test", trace.SpanContext{})
		res, err := ParallelSubtree(c, trials, workers, Options{Span: root})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		root.End()
		if res.Ops != static {
			t.Errorf("workers=%d: traced ops = %d, want %d", workers, res.Ops, static)
		}
		if len(res.Outcomes) != len(base.Outcomes) {
			t.Fatalf("workers=%d: %d outcomes, want %d", workers, len(res.Outcomes), len(base.Outcomes))
		}
		for i := range res.Outcomes {
			if res.Outcomes[i] != base.Outcomes[i] {
				t.Fatalf("workers=%d: outcome %d differs with tracing attached", workers, i)
			}
		}
		names := countSpans(root.Trace())
		if workers > 1 {
			if names["execute_subtree"] != 1 {
				t.Errorf("workers=%d: %d execute_subtree spans, want 1", workers, names["execute_subtree"])
			}
			if names["subtree_task"] == 0 {
				t.Errorf("workers=%d: no subtree_task spans", workers)
			}
		}
		// Every span must carry a unique ID even when sibling workers
		// race to create them.
		seen := make(map[string]bool)
		for _, sp := range root.Trace().Spans() {
			id := sp.IDString()
			if seen[id] {
				t.Fatalf("workers=%d: duplicate span id %s", workers, id)
			}
			seen[id] = true
		}
	}
}
