package sim

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/obs"
	"repro/internal/reorder"
	"repro/internal/statevec"
	"repro/internal/trace"
)

// Batch execution: run a shared variant-batch plan (reorder.BatchPlan)
// through the ordinary plan executors and attribute every outcome back to
// its (variant, original trial). The executors are untouched — a batch
// plan is a plan over merged trials — so all their guarantees carry over:
// outcomes are bit-identical to executing each variant's merged trials
// through an independent plan (or the baseline), in any execution mode,
// at any worker count. The difftest suite asserts exactly that.

// BatchResult is a batch execution demultiplexed per variant.
type BatchResult struct {
	// Combined is the raw shared-plan result: outcomes keyed by merged
	// trial ID, with the executed Ops/Copies/MSV of the whole batch.
	Combined *Result
	// PerVariant holds one Result per variant with outcomes (and, under
	// Options.KeepStates, final states) keyed by the variant's original
	// trial IDs. Only outcome fields are populated: the executed-work
	// metrics live in Combined, because shared work cannot be attributed
	// to a single variant.
	PerVariant []*Result
}

// ExecuteBatchPlan runs a prebuilt batch plan sequentially (one working
// register, the shared snapshot stack) and demultiplexes the outcomes per
// variant. The recorder, when set, additionally receives the batch
// accounting: obs.BatchVariants, obs.BatchOpsSaved (the static
// sum-of-parts minus the shared plan's ops) and one
// obs.HistBatchVariantOps observation per variant.
func ExecuteBatchPlan(c *circuit.Circuit, bp *reorder.BatchPlan, opt Options) (*BatchResult, error) {
	res, err := ExecutePlan(c, bp.Plan, opt)
	if err != nil {
		return nil, err
	}
	return demuxBatch(bp, res, opt)
}

// ExecuteBatchSubtree runs a batch plan on the subtree worker pool: the
// shared trunk executes once and spawns per-branch tasks, preserving all
// cross-variant prefix sharing at every worker count (the split-plan
// invariant). The batch's own snapshot budget bounds the trunk's and each
// worker's stack. workers <= 1 falls back to the sequential executor.
func ExecuteBatchSubtree(c *circuit.Circuit, bp *reorder.BatchPlan, workers int, opt Options) (*BatchResult, error) {
	// With Options.Lanes > 1 even a single worker routes through the
	// split plan, so sibling branches advance through the batched SoA
	// engine rather than the sequential plan executor.
	if workers <= 1 && opt.Lanes <= 1 {
		return ExecuteBatchPlan(c, bp, opt)
	}
	if workers < 1 {
		workers = 1
	}
	ordered := bp.Plan.Order
	cut := chooseCut(ordered, workers)
	budget := bp.Budget()
	if opt.Policy != PolicySnapshot {
		// Non-snapshot policies enforce the budget at run time; the
		// split plan stays unbudgeted (no restore/replay steps).
		budget = math.MaxInt
	}
	sp, err := reorder.SplitPlanOrderedCut(c, ordered, cut, budget)
	if err != nil {
		return nil, err
	}
	res, err := ExecuteSplitPlan(c, sp, workers, opt)
	if err != nil {
		return nil, err
	}
	return demuxBatch(bp, res, opt)
}

// demuxBatch splits a merged-ID result into per-variant results and
// records the batch accounting.
func demuxBatch(bp *reorder.BatchPlan, res *Result, opt Options) (*BatchResult, error) {
	per := make([]*Result, bp.NumVariants())
	for vi := range per {
		per[vi] = &Result{Counts: make(map[uint64]int)}
		if opt.KeepStates {
			per[vi].FinalStates = make(map[int]*statevec.State)
		}
	}
	for _, o := range res.Outcomes {
		org := bp.Origin(o.TrialID)
		pr := per[org.Variant]
		pr.Outcomes = append(pr.Outcomes, Outcome{TrialID: org.TrialID, Bits: o.Bits})
	}
	if opt.KeepStates {
		for id, st := range res.FinalStates {
			org := bp.Origin(id)
			pr := per[org.Variant]
			if _, dup := pr.FinalStates[org.TrialID]; dup {
				return nil, fmt.Errorf("sim: variant %d has duplicate original trial ID %d", org.Variant, org.TrialID)
			}
			pr.FinalStates[org.TrialID] = st
		}
	}
	for vi, pr := range per {
		if len(pr.Outcomes) != len(bp.VariantTrials(vi)) {
			return nil, fmt.Errorf("sim: variant %d received %d outcomes of %d", vi, len(pr.Outcomes), len(bp.VariantTrials(vi)))
		}
		finish(pr)
	}
	if rec := opt.Recorder; rec != nil {
		a := bp.Analysis()
		rec.Add(obs.BatchVariants, int64(a.Variants))
		rec.Add(obs.BatchOpsSaved, a.SavedOps)
		for vi := 0; vi < bp.NumVariants(); vi++ {
			rec.Observe(obs.HistBatchVariantOps, bp.VariantOps(vi))
		}
	}
	if sp := opt.Span; sp != nil {
		a := bp.Analysis()
		sp.Event("batch_demux",
			trace.Int("variants", int64(a.Variants)),
			trace.Int("ops_saved", a.SavedOps))
	}
	return &BatchResult{Combined: res, PerVariant: per}, nil
}
