package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/noise"
	"repro/internal/reorder"
)

// cliffordChain returns an n-qubit Clifford circuit: layered H/S/CX with a
// GHZ-like backbone, measured on all qubits.
func cliffordChain(n, depth int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New("clifford", n)
	for d := 0; d < depth; d++ {
		for q := 0; q < n; q++ {
			switch rng.Intn(3) {
			case 0:
				c.Append(gate.H(), q)
			case 1:
				c.Append(gate.S(), q)
			default:
				c.Append(gate.Z(), q)
			}
		}
		for q := d % 2; q+1 < n; q += 2 {
			c.Append(gate.CX(), q, q+1)
		}
	}
	c.MeasureAll()
	return c
}

func TestSVBackendMatchesSpecializedExecutor(t *testing.T) {
	c := bench.QFT(4)
	m := noise.Uniform("u", 4, 5e-3, 5e-2, 2e-2)
	trials := genTrials(t, c, m, 300, 40)
	plan, err := reorder.BuildPlan(c, trials)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ExecutePlan(c, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	generic, err := ExecutePlanBackend(c, plan, NewSVBackend(c.NumQubits()))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualOutcomes(fast, generic) {
		t.Error("generic SV backend disagrees with specialized executor")
	}
	if fast.Ops != generic.Ops || fast.MSV != generic.MSV {
		t.Errorf("accounting differs: ops %d/%d, MSV %d/%d", fast.Ops, generic.Ops, fast.MSV, generic.MSV)
	}
}

func TestTableauBaselineMatchesReordered(t *testing.T) {
	c := cliffordChain(6, 8, 41)
	m := noise.Uniform("u", 6, 5e-3, 3e-2, 1e-2)
	trials := genTrials(t, c, m, 400, 42)
	plan, err := reorder.BuildPlan(c, trials)
	if err != nil {
		t.Fatal(err)
	}
	base, err := BaselineBackend(c, trials, NewTableauBackend(c.NumQubits()))
	if err != nil {
		t.Fatal(err)
	}
	reord, err := ExecutePlanBackend(c, plan, NewTableauBackend(c.NumQubits()))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualOutcomes(base, reord) {
		t.Error("tableau baseline and reordered disagree")
	}
	if reord.Ops >= base.Ops {
		t.Errorf("tableau reordering saved nothing: %d vs %d", reord.Ops, base.Ops)
	}
}

// TestTableauDistributionMatchesStateVector compares the noisy output
// distributions of the two backends on the same Clifford circuit (same
// trials, different sampling randomness, so distribution-level agreement).
func TestTableauDistributionMatchesStateVector(t *testing.T) {
	c := cliffordChain(4, 5, 43)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 2e-2)
	trials := genTrials(t, c, m, 30000, 44)

	sv, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := reorder.BuildPlan(c, trials)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ExecutePlanBackend(c, plan, NewTableauBackend(c.NumQubits()))
	if err != nil {
		t.Fatal(err)
	}
	svd, tabd := sv.Distribution(), tab.Distribution()
	var tv float64
	seen := map[uint64]bool{}
	for k := range svd {
		seen[k] = true
	}
	for k := range tabd {
		seen[k] = true
	}
	for k := range seen {
		tv += math.Abs(svd[k] - tabd[k])
	}
	if tv/2 > 0.03 {
		t.Errorf("backends disagree in distribution: TV = %g", tv/2)
	}
}

// TestTableauWideNoisySimulation runs noisy simulation at 80 qubits — a
// width where a single state vector would need 19 ZB — demonstrating the
// reordering scheme on the stabilizer backend.
func TestTableauWideNoisySimulation(t *testing.T) {
	const n = 80
	c := cliffordChain(n, 4, 45)
	m := noise.Uniform("u", n, 1e-3, 1e-2, 1e-2)
	// Only 60 measured bits fit the mask; measure the first 60 qubits.
	c2 := circuit.New("wide", n)
	for _, op := range c.Ops() {
		c2.Append(op.Gate, op.Qubits...)
	}
	for q := 0; q < 60; q++ {
		c2.Measure(q, q)
	}
	trials := genTrials(t, c2, m, 200, 46)
	plan, err := reorder.BuildPlan(c2, trials)
	if err != nil {
		t.Fatal(err)
	}
	base, err := BaselineBackend(c2, trials, NewTableauBackend(n))
	if err != nil {
		t.Fatal(err)
	}
	reord, err := ExecutePlanBackend(c2, plan, NewTableauBackend(n))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualOutcomes(base, reord) {
		t.Error("wide tableau simulation equivalence violated")
	}
	saving := 1 - float64(reord.Ops)/float64(base.Ops)
	t.Logf("80-qubit Clifford: %.1f%% ops saved, MSV %d", saving*100, reord.MSV)
	if saving <= 0 {
		t.Error("no saving on wide Clifford circuit")
	}
}

func TestBackendCopyFromTypeMismatch(t *testing.T) {
	sv := NewSVBackend(2)
	tab := NewTableauBackend(2)
	if err := sv.CopyFrom(tab); err == nil {
		t.Error("cross-type CopyFrom accepted")
	}
	if err := tab.CopyFrom(sv); err == nil {
		t.Error("cross-type CopyFrom accepted")
	}
}

func TestTableauBackendRejectsNonClifford(t *testing.T) {
	c := circuit.New("t", 1)
	c.Append(gate.T(), 0)
	c.Measure(0, 0)
	m := noise.NewModel("clean", 1)
	trials := genTrials(t, c, m, 5, 47)
	if _, err := BaselineBackend(c, trials, NewTableauBackend(1)); err == nil {
		t.Error("non-Clifford circuit accepted on tableau")
	}
}

func TestSparseBackendMatchesDense(t *testing.T) {
	c := bench.BV(5, 0b1101)
	m := noise.Uniform("u", 5, 5e-3, 3e-2, 1e-2)
	trials := genTrials(t, c, m, 400, 50)
	plan, err := reorder.BuildPlan(c, trials)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := ExecutePlanBackend(c, plan, NewSVBackend(c.NumQubits()))
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := ExecutePlanBackend(c, plan, NewSparseBackend(c.NumQubits()))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualOutcomes(dense, sparse) {
		t.Error("sparse backend disagrees with dense")
	}
}

// TestSparseBackendWideGHZ: noisy GHZ at 58 qubits with amplitudes — far
// beyond dense simulation, trivial for the sparse backend because Pauli
// noise preserves the 2-element support.
func TestSparseBackendWideGHZ(t *testing.T) {
	const n = 58
	c := bench.GHZ(n)
	// Readout error must stay low: with 58 measured qubits, a per-qubit
	// flip rate p leaves only (1-p)^58 of trials unflipped.
	m := noise.Uniform("u", n, 1e-4, 1e-3, 1e-3)
	trials := genTrials(t, c, m, 300, 51)
	plan, err := reorder.BuildPlan(c, trials)
	if err != nil {
		t.Fatal(err)
	}
	base, err := BaselineBackend(c, trials, NewSparseBackend(n))
	if err != nil {
		t.Fatal(err)
	}
	reord, err := ExecutePlanBackend(c, plan, NewSparseBackend(n))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualOutcomes(base, reord) {
		t.Error("wide sparse equivalence violated")
	}
	// GHZ parity: most outcomes at the extremes.
	ends := float64(reord.Counts[0]+reord.Counts[(uint64(1)<<n)-1]) / float64(len(trials))
	if ends < 0.5 {
		t.Errorf("GHZ extremes mass = %g", ends)
	}
}
