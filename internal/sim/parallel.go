package sim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/circuit"
	"repro/internal/obs"
	"repro/internal/reorder"
	"repro/internal/statevec"
	"repro/internal/trace"
	"repro/internal/trial"
)

// Parallel runs the reordered simulation across several workers: the
// sorted trial sequence is split into contiguous chunks, each chunk gets
// its own plan and state registers, and chunks execute concurrently.
//
// Sharing within each chunk is preserved in full, but every prefix that
// spans a chunk boundary is recomputed, so total ops grow with the worker
// count — the redundancy ParallelSubtree eliminates by cutting the trie at
// branch points instead of at arbitrary trial indices. Parallel is kept as
// the comparison baseline for that decomposition. Per-trial outcomes are
// bit-identical to the sequential simulators because every trial carries
// its own randomness.
//
// The Result's MSV field reports the true concurrent peak of stored
// vectors — a high-water mark taken across all workers as snapshots are
// pushed and dropped. It is at most, and usually below, the sum of
// per-chunk peaks, because chunks do not reach their individual peaks at
// the same instant.
func Parallel(c *circuit.Circuit, trials []*trial.Trial, workers int, opt Options) (*Result, error) {
	if workers < 1 {
		return nil, fmt.Errorf("sim: worker count %d < 1", workers)
	}
	if len(trials) == 0 {
		return nil, fmt.Errorf("sim: empty trial set")
	}
	var psp *trace.Span
	if opt.Span != nil {
		psp = opt.Span.Child("execute_parallel",
			trace.Int("workers", int64(workers)),
			trace.Int("trials", int64(len(trials))))
		// Chunk spans (execute_plan, one per worker) and the shared
		// program's segment compiles nest under the parallel span.
		opt.Span = psp
	}
	// Workers beyond the trial count simply get empty chunks (lo == hi
	// below) and contribute nothing to the merge.
	ordered := reorder.Sort(trials)
	budget := opt.planBudget()
	// One buffer arena shared by every chunk, recorded here (the chunks
	// see a caller-provided pool and skip their own accounting).
	if opt.Pool == nil {
		arena := statevec.NewBufferPool()
		opt.Pool = arena
		defer recordPoolStats(opt.Recorder, arena, 0, 0, 0)
	}
	// One compiled circuit shared by every chunk (Programs are
	// goroutine-safe); each chunk plan carries it into executePlan.
	prog := opt.compileProgram(c)
	if opt.Policy != PolicySnapshot && prog == nil {
		// The policy executor reverse-executes through the compiled
		// program; compile one (dispatch-identical) for all chunks.
		prog = opt.policyProgram(c)
	}

	type chunkResult struct {
		res *Result
		err error
	}
	results := make([]chunkResult, workers)
	var tracker msvTracker
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(ordered) / workers
		hi := (w + 1) * len(ordered) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w int, chunk []*trial.Trial) {
			defer wg.Done()
			// The chunk is a sub-range of the globally sorted order, so
			// the presorted plan constructor skips the per-chunk re-sort.
			plan, err := reorder.BuildPlanOrderedBudget(c, chunk, budget)
			if err != nil {
				results[w] = chunkResult{err: err}
				return
			}
			plan.Prog = prog
			res, err := executePlan(c, plan, opt, &tracker, w)
			results[w] = chunkResult{res: res, err: err}
		}(w, ordered[lo:hi])
	}
	wg.Wait()

	merged := &Result{Counts: make(map[uint64]int)}
	if opt.KeepStates {
		merged.FinalStates = make(map[int]*statevec.State)
	}
	for w := range results {
		cr := results[w]
		if cr.err != nil {
			return traceDone(psp, nil, fmt.Errorf("sim: worker %d: %v", w, cr.err))
		}
		if cr.res == nil {
			continue
		}
		merged.Ops += cr.res.Ops
		merged.UncomputeOps += cr.res.UncomputeOps
		merged.Copies += cr.res.Copies
		merged.Outcomes = append(merged.Outcomes, cr.res.Outcomes...)
		if opt.KeepStates {
			for id, st := range cr.res.FinalStates {
				merged.FinalStates[id] = st
			}
		}
	}
	merged.MSV = tracker.highWater()
	if opt.Recorder != nil {
		// Chunks recorded their own stack peaks; the tracker's concurrent
		// high-water is the true combined MSV.
		opt.Recorder.SetMax(obs.MSVHighWater, int64(merged.MSV))
	}
	sort.Slice(merged.Outcomes, func(i, j int) bool {
		return merged.Outcomes[i].TrialID < merged.Outcomes[j].TrialID
	})
	for _, o := range merged.Outcomes {
		merged.Counts[o.Bits]++
	}
	return traceDone(psp, merged, nil)
}
