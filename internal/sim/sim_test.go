package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/gate"
	"repro/internal/noise"
	"repro/internal/reorder"
	"repro/internal/trial"
)

func genTrials(t *testing.T, c *circuit.Circuit, m *noise.Model, n int, seed int64) []*trial.Trial {
	t.Helper()
	g, err := trial.NewGenerator(c, m)
	if err != nil {
		t.Fatal(err)
	}
	return g.Generate(rand.New(rand.NewSource(seed)), n)
}

func TestBaselineNoiselessBell(t *testing.T) {
	c := circuit.New("bell", 2)
	c.Append(gate.H(), 0)
	c.Append(gate.CX(), 0, 1)
	c.MeasureAll()
	m := noise.NewModel("clean", 2)
	trials := genTrials(t, c, m, 2000, 1)
	res, err := Baseline(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dist := res.Distribution()
	if math.Abs(dist[0b00]-0.5) > 0.05 || math.Abs(dist[0b11]-0.5) > 0.05 {
		t.Errorf("Bell distribution wrong: %v", dist)
	}
	if dist[0b01] != 0 || dist[0b10] != 0 {
		t.Errorf("Bell produced odd-parity outcomes: %v", dist)
	}
	if res.Ops != int64(2*len(trials)) {
		t.Errorf("baseline ops = %d, want %d", res.Ops, 2*len(trials))
	}
	if res.MSV != 0 || res.Copies != 0 {
		t.Errorf("baseline should not store states: MSV=%d copies=%d", res.MSV, res.Copies)
	}
}

// TestEquivalenceOutcomes is the paper's central correctness claim: the
// reordered simulation is mathematically equivalent to the baseline. With
// per-trial pre-drawn randomness, outcomes must match bit for bit.
func TestEquivalenceOutcomes(t *testing.T) {
	circuits := map[string]*circuit.Circuit{
		"bv4":    bench.BV(4, 0b111),
		"qft3":   bench.QFT(3),
		"grover": bench.Grover3(),
		"wstate": bench.WState3(),
	}
	for name, c := range circuits {
		m := noise.Uniform("u", c.NumQubits(), 5e-3, 5e-2, 2e-2)
		trials := genTrials(t, c, m, 400, 7)
		base, err := Baseline(c, trials, Options{})
		if err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		reord, err := Reordered(c, trials, Options{})
		if err != nil {
			t.Fatalf("%s reordered: %v", name, err)
		}
		if !EqualOutcomes(base, reord) {
			t.Errorf("%s: outcomes differ between baseline and reordered", name)
		}
		for k, v := range base.Counts {
			if reord.Counts[k] != v {
				t.Errorf("%s: histogram differs at %b: %d vs %d", name, k, v, reord.Counts[k])
			}
		}
	}
}

// TestEquivalenceFinalStates checks equivalence at the strongest level:
// per-trial final state vectors must agree amplitude by amplitude.
func TestEquivalenceFinalStates(t *testing.T) {
	c := bench.QFT(3)
	m := noise.Uniform("u", 3, 1e-2, 1e-1, 0)
	trials := genTrials(t, c, m, 150, 8)
	base, err := Baseline(c, trials, Options{KeepStates: true})
	if err != nil {
		t.Fatal(err)
	}
	reord, err := Reordered(c, trials, Options{KeepStates: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trials {
		b, r := base.FinalStates[tr.ID], reord.FinalStates[tr.ID]
		if b == nil || r == nil {
			t.Fatalf("missing final state for trial %d", tr.ID)
		}
		if !b.Equal(r, 1e-12) {
			t.Fatalf("trial %d final states differ (max %g)", tr.ID, 0.0)
		}
	}
}

// TestEquivalenceProperty fuzzes equivalence across circuits, error rates
// and seeds.
func TestEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nq := 2 + rng.Intn(3)
		c := circuit.New("fuzz", nq)
		for i := 0; i < 5+rng.Intn(15); i++ {
			switch rng.Intn(4) {
			case 0:
				c.Append(gate.H(), rng.Intn(nq))
			case 1:
				c.Append(gate.T(), rng.Intn(nq))
			case 2:
				c.Append(gate.RX(rng.Float64()*math.Pi), rng.Intn(nq))
			default:
				a := rng.Intn(nq)
				b := (a + 1 + rng.Intn(nq-1)) % nq
				c.Append(gate.CX(), a, b)
			}
		}
		c.MeasureAll()
		m := noise.Uniform("u", nq, rng.Float64()*0.05, rng.Float64()*0.2, rng.Float64()*0.1)
		g, err := trial.NewGenerator(c, m)
		if err != nil {
			return false
		}
		trials := g.Generate(rng, 100)
		base, err := Baseline(c, trials, Options{})
		if err != nil {
			return false
		}
		reord, err := Reordered(c, trials, Options{})
		if err != nil {
			return false
		}
		return EqualOutcomes(base, reord)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestExecutedOpsMatchStaticAnalysis: the executed reordered simulation
// must perform exactly the op count the static planner predicted.
func TestExecutedOpsMatchStaticAnalysis(t *testing.T) {
	c := bench.Grover3()
	m := noise.Uniform("u", 3, 2e-3, 2e-2, 1e-2)
	trials := genTrials(t, c, m, 300, 9)
	plan, err := reorder.BuildPlan(c, trials)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecutePlan(c, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != plan.OptimizedOps() {
		t.Errorf("executed ops %d != planned %d", res.Ops, plan.OptimizedOps())
	}
	if res.MSV != plan.MSV() {
		t.Errorf("executed MSV %d != planned %d", res.MSV, plan.MSV())
	}
	if res.Copies != plan.Copies() {
		t.Errorf("executed copies %d != planned %d", res.Copies, plan.Copies())
	}
	base, err := Baseline(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Ops != plan.BaselineOps() {
		t.Errorf("baseline ops %d != planned %d", base.Ops, plan.BaselineOps())
	}
}

func TestReorderedSavesOps(t *testing.T) {
	d := device.Yorktown()
	c := bench.BV(5, 0b1111)
	trials := genTrials(t, c, d.Model(), 1024, 10)
	base, err := Baseline(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reord, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reord.Ops >= base.Ops {
		t.Errorf("reordered (%d ops) did not beat baseline (%d ops)", reord.Ops, base.Ops)
	}
	saving := 1 - float64(reord.Ops)/float64(base.Ops)
	t.Logf("bv5/Yorktown saving with 1024 trials: %.1f%%, MSV %d", saving*100, reord.MSV)
	if saving < 0.5 {
		t.Errorf("saving = %g, expected > 0.5", saving)
	}
}

func TestMeasurementFlipsApplied(t *testing.T) {
	// Circuit leaves |0>; a trial with a forced measurement flip must
	// report bit 1.
	c := circuit.New("t", 1)
	c.Append(gate.I(), 0)
	c.Measure(0, 0)
	tr := &trial.Trial{ID: 0, MeasFlips: 1, SampleU: 0.5}
	res, err := Baseline(c, []*trial.Trial{tr}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[1] != 1 {
		t.Errorf("flip not applied: counts %v", res.Counts)
	}
}

func TestInjectedErrorChangesOutcome(t *testing.T) {
	// |0> with an X injected after the only layer must measure 1.
	c := circuit.New("t", 1)
	c.Append(gate.I(), 0)
	c.Measure(0, 0)
	tr := &trial.Trial{ID: 0, SampleU: 0.5}
	tr.Inj = []trial.Key{trial.Pack(0, 0, gate.PauliX)}
	for name, run := range map[string]func() (*Result, error){
		"baseline":  func() (*Result, error) { return Baseline(c, []*trial.Trial{tr}, Options{}) },
		"reordered": func() (*Result, error) { return Reordered(c, []*trial.Trial{tr}, Options{}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Counts[1] != 1 {
			t.Errorf("%s: X injection not applied: %v", name, res.Counts)
		}
	}
}

func TestMeasurementMapping(t *testing.T) {
	// Measure qubit 0 into bit 2 and qubit 2 into bit 0; prepare |..1>
	// on qubit 0 only.
	c := circuit.New("t", 3)
	c.Append(gate.X(), 0)
	c.Measure(0, 2)
	c.Measure(2, 0)
	tr := &trial.Trial{ID: 0, SampleU: 0.3}
	res, err := Baseline(c, []*trial.Trial{tr}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0b100] != 1 {
		t.Errorf("qubit->bit routing wrong: %v", res.Counts)
	}
}

func TestDistributionNormalization(t *testing.T) {
	c := bench.BV(4, 0b101)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 1e-2)
	trials := genTrials(t, c, m, 500, 11)
	res, err := Baseline(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range res.Distribution() {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %g", sum)
	}
}

func TestNoisyDistributionConcentratesOnSecret(t *testing.T) {
	// BV with modest noise should still put the plurality of mass on the
	// secret string.
	secret := uint64(0b1011)
	c := bench.BV(5, secret)
	m := noise.Uniform("u", 5, 1e-3, 1e-2, 1e-2)
	trials := genTrials(t, c, m, 3000, 12)
	res, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dist := res.Distribution()
	best, bestP := uint64(0), -1.0
	for k, p := range dist {
		if p > bestP {
			best, bestP = k, p
		}
	}
	if best != secret {
		t.Errorf("mode = %b (p=%g), want secret %b", best, bestP, secret)
	}
}

func TestOutcomesSortedByTrialID(t *testing.T) {
	c := bench.BV(4, 0b111)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 0)
	trials := genTrials(t, c, m, 64, 13)
	res, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outcomes {
		if o.TrialID != i {
			t.Fatalf("outcomes not in trial-ID order at %d: %d", i, o.TrialID)
		}
	}
}

func TestEqualOutcomesDetectsDifference(t *testing.T) {
	a := &Result{Outcomes: []Outcome{{0, 1}}}
	b := &Result{Outcomes: []Outcome{{0, 2}}}
	if EqualOutcomes(a, b) {
		t.Error("different outcomes reported equal")
	}
	if !EqualOutcomes(a, a) {
		t.Error("identical outcomes reported unequal")
	}
	if EqualOutcomes(a, &Result{}) {
		t.Error("different lengths reported equal")
	}
}

// genOK builds a generator without a testing.T, for property functions.
func genOK(c *circuit.Circuit, m *noise.Model) (*trial.Generator, error) {
	return trial.NewGenerator(c, m)
}

// TestEquivalenceUnderALAPLayering: the reordering stays exact when the
// circuit uses ALAP layers (error positions move, correctness must not).
func TestEquivalenceUnderALAPLayering(t *testing.T) {
	c := bench.QFT(4)
	c.SetLayering(circuit.ALAP)
	m := noise.Uniform("u", 4, 5e-3, 5e-2, 2e-2)
	trials := genTrials(t, c, m, 300, 60)
	base, err := Baseline(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reord, err := Reordered(c, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualOutcomes(base, reord) {
		t.Error("ALAP layering broke equivalence")
	}
}
