package sim

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/noise"
	"repro/internal/reorder"
	"repro/internal/statevec"
)

func bitIdenticalStates(a, b *statevec.State) bool {
	aa, ba := a.Amplitudes(), b.Amplitudes()
	if len(aa) != len(ba) {
		return false
	}
	for i := range aa {
		if math.Float64bits(real(aa[i])) != math.Float64bits(real(ba[i])) ||
			math.Float64bits(imag(aa[i])) != math.Float64bits(imag(ba[i])) {
			return false
		}
	}
	return true
}

// TestFusedExecutionBitIdentical runs every compiled-execution
// configuration in FuseExact mode against plain dispatch execution and
// demands bit-identical per-trial outcomes AND final states: exact
// fusion must not change a single floating-point operation.
func TestFusedExecutionBitIdentical(t *testing.T) {
	circuits := map[string]*circuit.Circuit{
		"bv4":    bench.BV(4, 0b101),
		"qft3":   bench.QFT(3),
		"grover": bench.Grover3(),
	}
	for name, c := range circuits {
		m := noise.Uniform("u", c.NumQubits(), 5e-3, 5e-2, 2e-2)
		trials := genTrials(t, c, m, 200, 11)
		ref, err := Reordered(c, trials, Options{KeepStates: true})
		if err != nil {
			t.Fatalf("%s reference: %v", name, err)
		}

		type cfg struct {
			cname string
			opt   Options
			run   func(opt Options) (*Result, error)
		}
		cases := []cfg{
			{"plan-fused", Options{KeepStates: true, Fuse: statevec.FuseExact},
				func(opt Options) (*Result, error) { return Reordered(c, trials, opt) }},
			{"plan-striped-only", Options{KeepStates: true, Stripes: 3, StripeMin: 1},
				func(opt Options) (*Result, error) { return Reordered(c, trials, opt) }},
			{"plan-fused-striped", Options{KeepStates: true, Fuse: statevec.FuseExact, Stripes: 4, StripeMin: 1},
				func(opt Options) (*Result, error) { return Reordered(c, trials, opt) }},
			{"plan-fused-budget2", Options{KeepStates: true, Fuse: statevec.FuseExact, SnapshotBudget: 2},
				func(opt Options) (*Result, error) { return Reordered(c, trials, opt) }},
			{"chunked-2-fused", Options{KeepStates: true, Fuse: statevec.FuseExact},
				func(opt Options) (*Result, error) { return Parallel(c, trials, 2, opt) }},
			{"subtree-2-fused-striped", Options{KeepStates: true, Fuse: statevec.FuseExact, Stripes: 2, StripeMin: 1},
				func(opt Options) (*Result, error) { return ParallelSubtree(c, trials, 2, opt) }},
		}
		for _, tc := range cases {
			res, err := tc.run(tc.opt)
			if err != nil {
				t.Fatalf("%s %s: %v", name, tc.cname, err)
			}
			if !EqualOutcomes(ref, res) {
				t.Errorf("%s %s: outcomes differ from dispatch execution", name, tc.cname)
			}
			for id, want := range ref.FinalStates {
				got := res.FinalStates[id]
				if got == nil {
					t.Fatalf("%s %s: missing final state for trial %d", name, tc.cname, id)
				}
				if !bitIdenticalStates(want, got) {
					t.Fatalf("%s %s: trial %d final state not bit-identical", name, tc.cname, id)
				}
			}
		}

		// Budgeted fused run must be bit-identical to the budgeted
		// dispatch run (replays included).
		refBud, err := Reordered(c, trials, Options{KeepStates: true, SnapshotBudget: 2})
		if err != nil {
			t.Fatal(err)
		}
		gotBud, err := Reordered(c, trials, Options{KeepStates: true, SnapshotBudget: 2, Fuse: statevec.FuseExact})
		if err != nil {
			t.Fatal(err)
		}
		if !EqualOutcomes(refBud, gotBud) {
			t.Errorf("%s: budgeted fused outcomes differ", name)
		}
		for id, want := range refBud.FinalStates {
			if !bitIdenticalStates(want, gotBud.FinalStates[id]) {
				t.Fatalf("%s: budgeted fused trial %d state not bit-identical", name, id)
			}
		}
	}
}

// TestFusedOpAccounting pins the paper's metric under fusion: compiled
// execution must report exactly the static plan's op count (logical ops,
// not kernels), and the same MSV and copies.
func TestFusedOpAccounting(t *testing.T) {
	c := bench.QFT(4)
	m := noise.Uniform("u", 4, 1e-2, 5e-2, 0)
	trials := genTrials(t, c, m, 300, 3)

	plan, err := reorder.BuildPlan(c, trials)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []statevec.FuseMode{statevec.FuseOff, statevec.FuseExact, statevec.FuseNumeric} {
		res, err := Reordered(c, trials, Options{Fuse: mode, Stripes: 2, StripeMin: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops != plan.OptimizedOps() {
			t.Errorf("mode %v: executed %d ops, plan says %d", mode, res.Ops, plan.OptimizedOps())
		}
		if res.MSV != plan.MSV() {
			t.Errorf("mode %v: MSV %d, plan says %d", mode, res.MSV, plan.MSV())
		}
		if res.Copies != plan.Copies() {
			t.Errorf("mode %v: copies %d, plan says %d", mode, res.Copies, plan.Copies())
		}
	}

	// Subtree decomposition keeps all sharing: fused subtree ops must
	// still equal the sequential plan's.
	for _, w := range []int{2, 4} {
		res, err := ParallelSubtree(c, trials, w, Options{Fuse: statevec.FuseExact, Stripes: 2, StripeMin: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops != plan.OptimizedOps() {
			t.Errorf("subtree-%d fused: executed %d ops, plan says %d", w, res.Ops, plan.OptimizedOps())
		}
	}
}

// TestNumericFusedEquivalence checks FuseNumeric end-to-end: same op
// accounting, final states within tolerance of dispatch execution
// (algebraic folding reassociates floating point, so bit-identity is not
// claimed and numeric mode stays out of the difftest registry).
func TestNumericFusedEquivalence(t *testing.T) {
	c := bench.Grover3()
	m := noise.Uniform("u", c.NumQubits(), 1e-2, 5e-2, 0)
	trials := genTrials(t, c, m, 250, 17)

	ref, err := Reordered(c, trials, Options{KeepStates: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reordered(c, trials, Options{KeepStates: true, Fuse: statevec.FuseNumeric})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != ref.Ops {
		t.Errorf("numeric ops %d, dispatch %d", res.Ops, ref.Ops)
	}
	for id, want := range ref.FinalStates {
		got := res.FinalStates[id]
		if got == nil {
			t.Fatalf("missing numeric final state for trial %d", id)
		}
		if !want.Equal(got, 1e-9) {
			t.Fatalf("trial %d numeric state deviates beyond 1e-9", id)
		}
	}
}
