// Package rb implements the randomized-benchmarking protocol (the paper's
// "rb" workload, reference [32]): run self-inverting random Clifford
// sequences of growing depth under the device noise model, measure the
// survival probability (all-zeros readout), and fit the exponential decay
// A·p^m + B to extract the error per Clifford.
//
// Every data point is a full Monte Carlo noisy simulation, so the
// protocol is a natural consumer of the trial-reordering speedup: the
// same circuit is simulated thousands of times per depth.
package rb

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/noise"
	"repro/internal/reorder"
	"repro/internal/sim"
	"repro/internal/trial"
)

// Sequence builds an n-qubit random Clifford sequence of the given depth
// followed by its exact inverse and terminal measurement: noiseless
// output is all zeros, so any other readout is noise.
func Sequence(n, depth int, rng *rand.Rand) *circuit.Circuit {
	if n < 1 {
		panic(fmt.Sprintf("rb: invalid qubit count %d", n))
	}
	fwd := circuit.New(fmt.Sprintf("rb_n%d_m%d", n, depth), n)
	for d := 0; d < depth; d++ {
		for q := 0; q < n; q++ {
			switch rng.Intn(4) {
			case 0:
				fwd.Append(gate.H(), q)
			case 1:
				fwd.Append(gate.S(), q)
			case 2:
				fwd.Append(gate.Sdg(), q)
			default:
				fwd.Append(gate.Z(), q)
			}
		}
		if n > 1 {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			fwd.Append(gate.CX(), a, b)
		}
	}
	echo, err := circuit.Echo(fwd)
	if err != nil {
		panic(fmt.Sprintf("rb: echo of unmeasured circuit failed: %v", err))
	}
	echo.SetName(fwd.Name())
	echo.MeasureAll()
	return echo
}

// Point is one depth's measurement.
type Point struct {
	Depth    int
	Survival float64 // P(all-zeros readout)
	Gates    int     // gate count of the echo circuit
	OpsSaved float64 // reordering saving at this depth
}

// Fit holds the exponential decay fit A*p^m + B.
type Fit struct {
	A, P, B float64
	// ErrorPerClifford is the standard RB number r = (1 - p)(2^n - 1)/2^n.
	ErrorPerClifford float64
}

// Config drives a protocol run.
type Config struct {
	Qubits    int
	Depths    []int
	Sequences int // random sequences averaged per depth
	Trials    int // Monte Carlo trials per sequence
	Model     *noise.Model
	Seed      int64
}

// Result is a full RB run.
type Result struct {
	Points []Point
	Fit    Fit
}

// Run executes the protocol: for each depth, average the survival of
// several random sequences, each estimated with the reordered Monte Carlo
// simulator; then fit the decay.
func Run(cfg Config) (*Result, error) {
	if cfg.Qubits < 1 || len(cfg.Depths) < 2 || cfg.Sequences < 1 || cfg.Trials < 1 {
		return nil, fmt.Errorf("rb: invalid config %+v", cfg)
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("rb: model required")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{}
	for _, m := range cfg.Depths {
		var survival, saved float64
		gates := 0
		for s := 0; s < cfg.Sequences; s++ {
			c := Sequence(cfg.Qubits, m, rng)
			gates = c.NumOps()
			gen, err := trial.NewGenerator(c, cfg.Model)
			if err != nil {
				return nil, err
			}
			trials := gen.Generate(rng, cfg.Trials)
			plan, err := reorder.BuildPlan(c, trials)
			if err != nil {
				return nil, err
			}
			r, err := sim.ExecutePlan(c, plan, sim.Options{})
			if err != nil {
				return nil, err
			}
			survival += float64(r.Counts[0]) / float64(cfg.Trials)
			saved += 1 - float64(plan.OptimizedOps())/float64(plan.BaselineOps())
		}
		res.Points = append(res.Points, Point{
			Depth:    m,
			Survival: survival / float64(cfg.Sequences),
			Gates:    gates,
			OpsSaved: saved / float64(cfg.Sequences),
		})
	}
	fit, err := FitDecay(res.Points, cfg.Qubits)
	if err != nil {
		return nil, err
	}
	res.Fit = fit
	return res, nil
}

// FitDecay fits A*p^m + B to the survival points. B is pinned to the
// depolarized floor 1/2^n (the asymptote of the all-zeros probability
// under full depolarization), then log-linear least squares on
// (survival - B) gives p and A.
func FitDecay(points []Point, nQubits int) (Fit, error) {
	if len(points) < 2 {
		return Fit{}, fmt.Errorf("rb: need >= 2 points to fit, got %d", len(points))
	}
	b := 1 / math.Exp2(float64(nQubits))
	var sx, sy, sxx, sxy float64
	n := 0
	for _, pt := range points {
		y := pt.Survival - b
		if y <= 1e-9 {
			continue // at or below the floor; no information about p
		}
		x := float64(pt.Depth)
		ly := math.Log(y)
		sx += x
		sy += ly
		sxx += x * x
		sxy += x * ly
		n++
	}
	if n < 2 {
		return Fit{}, fmt.Errorf("rb: decay already at the depolarized floor; reduce depths")
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return Fit{}, fmt.Errorf("rb: degenerate depths")
	}
	slope := (float64(n)*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / float64(n)
	p := math.Exp(slope)
	if p > 1 {
		p = 1
	}
	dim := math.Exp2(float64(nQubits))
	return Fit{
		A:                math.Exp(intercept),
		P:                p,
		B:                b,
		ErrorPerClifford: (1 - p) * (dim - 1) / dim,
	}, nil
}
