package rb

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/noise"
	"repro/internal/statevec"
)

func TestSequenceIsIdentityNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, depth := range []int{1, 3, 8} {
		c := Sequence(2, depth, rng)
		st := statevec.NewState(2)
		for _, op := range c.Ops() {
			st.ApplyOp(op.Gate, op.Qubits...)
		}
		if p := st.Probability(0); math.Abs(p-1) > 1e-9 {
			t.Errorf("depth %d: P(|00>) = %g, want 1", depth, p)
		}
	}
}

func TestSequenceDepthScalesGates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shallow := Sequence(2, 2, rng)
	deep := Sequence(2, 10, rng)
	if deep.NumOps() <= shallow.NumOps() {
		t.Errorf("deeper sequence not longer: %d vs %d", deep.NumOps(), shallow.NumOps())
	}
}

func TestRunDecay(t *testing.T) {
	res, err := Run(Config{
		Qubits:    2,
		Depths:    []int{1, 4, 8, 16},
		Sequences: 3,
		Trials:    3000,
		Model:     noise.Uniform("m", 2, 2e-3, 2e-2, 0),
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Survival decays with depth.
	first := res.Points[0].Survival
	last := res.Points[len(res.Points)-1].Survival
	if last >= first {
		t.Errorf("survival did not decay: %g -> %g", first, last)
	}
	// Fit parameters sane.
	f := res.Fit
	if f.P <= 0 || f.P > 1 {
		t.Errorf("fitted p = %g", f.P)
	}
	if f.ErrorPerClifford <= 0 || f.ErrorPerClifford > 0.5 {
		t.Errorf("error per Clifford = %g", f.ErrorPerClifford)
	}
	// Savings should be substantial at these rates.
	if res.Points[0].OpsSaved < 0.5 {
		t.Errorf("ops saved = %g, want > 0.5", res.Points[0].OpsSaved)
	}
}

func TestErrorPerCliffordTracksNoise(t *testing.T) {
	run := func(p1 float64) float64 {
		res, err := Run(Config{
			Qubits:    1,
			Depths:    []int{1, 4, 8, 16, 32},
			Sequences: 4,
			Trials:    4000,
			Model:     noise.Uniform("m", 1, p1, 0, 0),
			Seed:      4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Fit.ErrorPerClifford
	}
	low := run(1e-3)
	high := run(1e-2)
	if high <= low {
		t.Errorf("error per Clifford not monotone in noise: %g vs %g", low, high)
	}
}

func TestFitDecayExact(t *testing.T) {
	// Synthesize exact decay points and recover the parameters.
	a, p, b := 0.75, 0.93, 0.25
	var pts []Point
	for _, m := range []int{1, 2, 4, 8, 16, 32} {
		pts = append(pts, Point{Depth: m, Survival: a*math.Pow(p, float64(m)) + b})
	}
	fit, err := FitDecay(pts, 2) // b = 1/4 matches nQubits=2
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.P-p) > 1e-6 || math.Abs(fit.A-a) > 1e-6 {
		t.Errorf("fit = A %g, p %g; want %g, %g", fit.A, fit.P, a, p)
	}
}

func TestFitDecayErrors(t *testing.T) {
	if _, err := FitDecay([]Point{{Depth: 1, Survival: 1}}, 1); err == nil {
		t.Error("single point accepted")
	}
	// All points at the floor.
	floor := []Point{{Depth: 1, Survival: 0.5}, {Depth: 2, Survival: 0.5}}
	if _, err := FitDecay(floor, 1); err == nil {
		t.Error("floor-only points accepted")
	}
	// Degenerate: identical depths.
	same := []Point{{Depth: 3, Survival: 0.9}, {Depth: 3, Survival: 0.8}}
	if _, err := FitDecay(same, 1); err == nil {
		t.Error("identical depths accepted")
	}
}

func TestRunValidation(t *testing.T) {
	m := noise.NewModel("m", 2)
	bad := []Config{
		{Qubits: 0, Depths: []int{1, 2}, Sequences: 1, Trials: 1, Model: m},
		{Qubits: 2, Depths: []int{1}, Sequences: 1, Trials: 1, Model: m},
		{Qubits: 2, Depths: []int{1, 2}, Sequences: 0, Trials: 1, Model: m},
		{Qubits: 2, Depths: []int{1, 2}, Sequences: 1, Trials: 0, Model: m},
		{Qubits: 2, Depths: []int{1, 2}, Sequences: 1, Trials: 1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
