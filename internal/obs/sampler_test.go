package obs

import (
	"testing"
	"time"
)

func TestSamplerCapturesAndStops(t *testing.T) {
	s := StartSampler(10*time.Millisecond, 16)
	last, ok := s.Last()
	if !ok {
		t.Fatal("no sample immediately after start")
	}
	if last.HeapSysBytes == 0 || last.Goroutines < 1 {
		t.Errorf("implausible first sample: %+v", last)
	}
	time.Sleep(35 * time.Millisecond)
	s.Stop()
	total := s.Total()
	if total < 2 {
		t.Errorf("Total = %d, want >= 2 (initial + final)", total)
	}
	samples := s.Samples()
	if int64(len(samples)) != total && len(samples) != 16 {
		t.Errorf("Samples len %d inconsistent with total %d / cap 16", len(samples), total)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].AtNanos < samples[i-1].AtNanos {
			t.Fatalf("samples out of chronological order at %d", i)
		}
	}
	// Stopped sampler must not take further samples.
	time.Sleep(25 * time.Millisecond)
	if s.Total() != total {
		t.Errorf("sampler continued after Stop: %d -> %d", total, s.Total())
	}
}

func TestSamplerRingOverwrite(t *testing.T) {
	s := StartSampler(10*time.Millisecond, 3)
	time.Sleep(60 * time.Millisecond)
	s.Stop()
	if got := len(s.Samples()); got != 3 {
		t.Fatalf("ring retained %d samples, want capacity 3", got)
	}
	if s.Total() <= 3 {
		t.Errorf("Total = %d, want > capacity after overwrite", s.Total())
	}
	samples := s.Samples()
	for i := 1; i < len(samples); i++ {
		if samples[i].AtNanos < samples[i-1].AtNanos {
			t.Fatalf("overwritten ring out of order at %d", i)
		}
	}
}

func TestSamplerClampsInterval(t *testing.T) {
	s := StartSampler(0, 4) // would spin without the clamp
	if s.interval < minSamplerInterval {
		t.Errorf("interval %v below floor %v", s.interval, minSamplerInterval)
	}
	s.Stop()
}
