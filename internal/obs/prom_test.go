package obs

import (
	"strings"
	"testing"
	"time"
)

func populatedMetrics() *Metrics {
	m := NewMetrics()
	m.Add(Ops, 123)
	m.Add(Copies, 4)
	m.SetMax(MSVHighWater, 7)
	m.PhaseDone(PhaseExecute, 5*time.Millisecond)
	for v := int64(1); v <= 100; v++ {
		m.Observe(HistTrialLatency, v*1000)
	}
	m.Observe(HistRestoreDepth, 0)
	m.Observe(HistRestoreDepth, 2)
	return m
}

func TestWriteExpositionValidates(t *testing.T) {
	e := NewExporter()
	e.Register("qsim", populatedMetrics())
	e.Register("agg", NewMetrics()) // empty source must also be well-formed
	s := StartSampler(10*time.Millisecond, 4)
	defer s.Stop()
	e.AttachSampler(s)

	var b strings.Builder
	if err := e.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`repro_ops_total{job="qsim"} 123`,
		`repro_msv_high_water{job="qsim"} 7`,
		`repro_phase_ns_total{job="qsim",phase="execute"} 5000000`,
		`repro_trial_latency_ns_bucket{job="qsim",le="+Inf"} 100`,
		`repro_trial_latency_ns_count{job="qsim"} 100`,
		`repro_restore_depth_count{job="qsim"} 2`,
		`repro_runtime_goroutines`,
		`# TYPE repro_trial_latency_ns histogram`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if err := ValidateExposition(strings.NewReader(text)); err != nil {
		t.Errorf("own exposition failed validation: %v", err)
	}
}

func TestRegisterReplacesJob(t *testing.T) {
	e := NewExporter()
	e.Register("j", NewMetrics())
	m2 := NewMetrics()
	m2.Add(Ops, 9)
	e.Register("j", m2)
	var b strings.Builder
	if err := e.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `repro_ops_total{job="j"} 9`) {
		t.Error("re-registering a job did not replace its source")
	}
	if strings.Count(b.String(), `repro_ops_total{job="j"}`) != 1 {
		t.Error("duplicate job series after re-register")
	}
}

func TestValidateExpositionCatchesDefects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"empty", ""},
		{"garbage line", "not a metric line at all { nope\n"},
		{"bad value", "repro_x_total 12abc\n"},
		{"non-cumulative buckets", "# TYPE repro_h histogram\n" +
			"repro_h_bucket{le=\"1\"} 5\nrepro_h_bucket{le=\"2\"} 3\nrepro_h_bucket{le=\"+Inf\"} 5\nrepro_h_sum 9\nrepro_h_count 5\n"},
		{"missing +Inf", "# TYPE repro_h histogram\n" +
			"repro_h_bucket{le=\"1\"} 5\nrepro_h_sum 9\nrepro_h_count 5\n"},
		{"count mismatch", "# TYPE repro_h histogram\n" +
			"repro_h_bucket{le=\"+Inf\"} 5\nrepro_h_sum 9\nrepro_h_count 6\n"},
		{"missing sum", "# TYPE repro_h histogram\n" +
			"repro_h_bucket{le=\"+Inf\"} 5\nrepro_h_count 5\n"},
		{"count without buckets", "# TYPE repro_h histogram\nrepro_h_count 5\n"},
	}
	for _, c := range cases {
		if err := ValidateExposition(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
	// A plain counter document with no histograms is fine.
	if err := ValidateExposition(strings.NewReader("repro_ops_total{job=\"x\"} 1\n")); err != nil {
		t.Errorf("valid counter doc rejected: %v", err)
	}
}
