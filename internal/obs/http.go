package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// StartPprof serves the net/http/pprof profile handlers and the expvar
// JSON endpoint on addr (e.g. "localhost:6060") from a background
// goroutine, returning the bound address (useful with ":0"). The listener
// lives for the remainder of the process; CLI binaries call this once at
// startup when -pprof is set.
func StartPprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	go http.Serve(ln, mux) //nolint:errcheck // best-effort debug endpoint
	return ln.Addr().String(), nil
}

// PublishExpvar exposes live metrics under the given expvar name (at
// /debug/vars), snapshotting on every scrape. Publishing the same name
// twice is a no-op rather than the package-level panic.
func PublishExpvar(name string, m *Metrics) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
