package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// StartPprof serves the net/http/pprof profile handlers, the expvar
// JSON endpoint and — when exp is non-nil — the Prometheus exposition
// at /metrics on addr (e.g. "localhost:6060") from a background
// goroutine. It returns the bound address (useful with ":0") and a
// close function that shuts the server down and releases the port.
func StartPprof(addr string, exp *Exporter) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if exp != nil {
		mux.Handle("/metrics", exp)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ln.Addr().String(), srv.Close, nil
}

// PublishExpvar exposes live metrics under the given expvar name (at
// /debug/vars), snapshotting on every scrape. Publishing the same name
// twice is a no-op rather than the package-level panic.
func PublishExpvar(name string, m *Metrics) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
