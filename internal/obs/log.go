package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// SetupLogger builds a leveled slog.Logger writing to w (text or JSON
// handler), installs it as the slog default, and returns it. Level is
// one of debug, info, warn, error (case-insensitive). The CLIs call
// this once from their -log-level/-log-json flags; all progress output
// then flows through structured records instead of ad-hoc Fprintf.
func SetupLogger(level string, json bool, w io.Writer) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(strings.TrimSpace(level)) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	logger := slog.New(h)
	slog.SetDefault(logger)
	return logger, nil
}
