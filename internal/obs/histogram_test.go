package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must land in the bucket whose bounds contain it.
	for _, v := range []int64{1, 2, 3, 100, 999, 1 << 20, 1<<40 + 7} {
		i := histBucket(v)
		if v < histBucketLower(i) || v > HistBucketUpper(i) {
			t.Errorf("value %d outside bucket %d bounds [%d, %d]", v, i, histBucketLower(i), HistBucketUpper(i))
		}
	}
	if HistBucketUpper(63) != math.MaxInt64 {
		t.Errorf("top bucket upper = %d, want MaxInt64", HistBucketUpper(63))
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count())
	}
	if h.Sum() != 1000*1001/2 {
		t.Fatalf("Sum = %d, want %d", h.Sum(), 1000*1001/2)
	}
	if h.Max() != 1000 {
		t.Fatalf("Max = %d, want 1000", h.Max())
	}
	// Log buckets are coarse: within a factor of 2 is the guarantee.
	checks := []struct {
		q     float64
		exact float64
	}{{0.50, 500}, {0.90, 900}, {0.99, 990}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.exact/2 || got > c.exact*2 {
			t.Errorf("Quantile(%.2f) = %.1f, want within 2x of %.1f", c.q, got, c.exact)
		}
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Errorf("Quantile(1.0) = %.1f, want clamped to max 1000", q)
	}
}

func TestHistogramEmptyAndSingle(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Max() != 0 {
		t.Error("empty histogram should read all zeros")
	}
	h.Observe(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < float64(histBucketLower(histBucket(42))) || got > 42 {
			t.Errorf("single-value Quantile(%.2f) = %.1f outside [32, 42]", q, got)
		}
	}
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 42 || s.Max != 42 || len(s.Buckets) != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestHistogramMergeExactAndOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parts := make([]*Histogram, 4)
	var whole Histogram
	for i := range parts {
		parts[i] = &Histogram{}
		for j := 0; j < 500; j++ {
			v := rng.Int63n(1 << 30)
			parts[i].Observe(v)
			whole.Observe(v)
		}
	}
	merge := func(order []int) *Histogram {
		var m Histogram
		for _, i := range order {
			m.Merge(parts[i])
		}
		return &m
	}
	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}}
	for _, ord := range orders {
		m := merge(ord)
		if m.Count() != whole.Count() || m.Sum() != whole.Sum() || m.Max() != whole.Max() {
			t.Fatalf("order %v: merged count/sum/max differ from direct observation", ord)
		}
		for i := 0; i < NumHistBuckets; i++ {
			if m.Bucket(i) != whole.Bucket(i) {
				t.Fatalf("order %v: bucket %d = %d, want %d", ord, i, m.Bucket(i), whole.Bucket(i))
			}
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1 << 20))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
	var bucketTotal int64
	for i := 0; i < NumHistBuckets; i++ {
		bucketTotal += h.Bucket(i)
	}
	if bucketTotal != workers*per {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, workers*per)
	}
}

func TestMetricsSnapshotIncludesHistograms(t *testing.T) {
	m := NewMetrics()
	m.Observe(HistTrialLatency, 100)
	m.Observe(HistTrialLatency, 200)
	m.Observe(HistRestoreDepth, 3)
	s := m.Snapshot()
	if len(s.Histograms) != int(numHists) {
		t.Fatalf("snapshot has %d histograms, want %d (stable schema)", len(s.Histograms), numHists)
	}
	tl := s.Histograms[HistTrialLatency.String()]
	if tl.Count != 2 || tl.Sum != 300 || tl.Max != 200 {
		t.Errorf("trial latency snapshot = %+v", tl)
	}
	if s.Histograms[HistKernelSweep.String()].Count != 0 {
		t.Error("untouched histogram should snapshot empty")
	}
}

func TestMultiFansOutObserve(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	tr := NewTrace()
	rec := Multi(a, tr, b)
	rec.Observe(HistKernelSweep, 5)
	if a.Hist(HistKernelSweep).Count() != 1 || b.Hist(HistKernelSweep).Count() != 1 {
		t.Error("Multi did not fan out Observe to both Metrics")
	}
	if tr.Len() != 0 {
		t.Error("Trace.Observe must be a no-op")
	}
}
