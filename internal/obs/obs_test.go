package obs

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestMetricsCountersAndGauges(t *testing.T) {
	m := NewMetrics()
	m.Add(Ops, 5)
	m.Add(Ops, 7)
	m.Add(SnapshotPushes, 3)
	m.SetMax(MSVHighWater, 4)
	m.SetMax(MSVHighWater, 2) // must not lower the high-water
	m.PhaseDone(PhaseExecute, 10*time.Millisecond)
	m.PhaseDone(PhaseExecute, 5*time.Millisecond)

	if got := m.Counter(Ops); got != 12 {
		t.Errorf("Ops = %d, want 12", got)
	}
	if got := m.Counter(SnapshotPushes); got != 3 {
		t.Errorf("SnapshotPushes = %d, want 3", got)
	}
	if got := m.Gauge(MSVHighWater); got != 4 {
		t.Errorf("MSVHighWater = %d, want 4", got)
	}
	if got := m.PhaseNanos(PhaseExecute); got != int64(15*time.Millisecond) {
		t.Errorf("PhaseExecute = %d ns, want 15ms", got)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Add(Copies, 1)
				m.SetMax(MSVHighWater, int64(w*per+i))
			}
		}(w)
	}
	wg.Wait()
	if got := m.Counter(Copies); got != workers*per {
		t.Errorf("Copies = %d, want %d", got, workers*per)
	}
	if got := m.Gauge(MSVHighWater); got != workers*per-1 {
		t.Errorf("MSVHighWater = %d, want %d", got, workers*per-1)
	}
}

func TestSnapshotStableSchema(t *testing.T) {
	s := NewMetrics().Snapshot()
	for c := Counter(0); c < numCounters; c++ {
		if _, ok := s.Counters[c.String()]; !ok {
			t.Errorf("snapshot missing counter %q", c)
		}
	}
	for p := Phase(0); p < numPhases; p++ {
		if _, ok := s.PhaseNs[p.String()]; !ok {
			t.Errorf("snapshot missing phase %q", p)
		}
	}
	if _, ok := s.Gauges[MSVHighWater.String()]; !ok {
		t.Error("snapshot missing msv_high_water")
	}
}

func TestNamesAreUniqueAndNonEmpty(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < numCounters; c++ {
		if c.String() == "" || seen[c.String()] {
			t.Errorf("counter %d name %q empty or duplicate", c, c)
		}
		seen[c.String()] = true
	}
	for p := Phase(0); p < numPhases; p++ {
		if p.String() == "" || seen[p.String()] {
			t.Errorf("phase %d name %q empty or duplicate", p, p)
		}
		seen[p.String()] = true
	}
	for k := EventKind(0); k < numEventKinds; k++ {
		if k.String() == "" {
			t.Errorf("event kind %d unnamed", k)
		}
	}
}

func TestStartPhaseNilRecorder(t *testing.T) {
	done := StartPhase(nil, PhaseSort)
	done() // must not panic
}

func TestMultiComposition(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of no live recorders should be nil")
	}
	m := NewMetrics()
	if got := Multi(nil, m); got != Recorder(m) {
		t.Error("Multi with one live recorder should return it directly")
	}
	a, b := NewMetrics(), NewMetrics()
	both := Multi(a, nil, b)
	both.Add(Ops, 2)
	both.SetMax(MSVHighWater, 9)
	both.PhaseDone(PhaseTrialGen, time.Millisecond)
	if a.Counter(Ops) != 2 || b.Counter(Ops) != 2 {
		t.Error("Multi did not fan out Add")
	}
	if a.Gauge(MSVHighWater) != 9 || b.Gauge(MSVHighWater) != 9 {
		t.Error("Multi did not fan out SetMax")
	}
}

func TestRunMetricsRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.Add(Ops, 42)
	rm := &RunMetrics{
		Binary:  "qsim",
		Circuit: "qv_n5d3",
		Qubits:  5,
		Trials:  256,
		Seed:    1,
		Mode:    "reordered",
		Plan:    &PlanStatics{BaselineOps: 100, OptimizedOps: 42, Normalized: 0.42, MSV: 3, Copies: 7},
		Result:  &ExecStatics{Ops: 42, Copies: 7, MSV: 3},
		Metrics: m.Snapshot(),
	}
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := WriteRunMetrics(path, rm); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRunMetrics(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Binary != "qsim" || got.Plan.OptimizedOps != 42 || got.Result.MSV != 3 {
		t.Errorf("round trip mangled envelope: %+v", got)
	}
	if got.Metrics.Counters[Ops.String()] != 42 {
		t.Errorf("counters lost: %v", got.Metrics.Counters)
	}
}

func TestSuiteScenarios(t *testing.T) {
	s := NewSuite()
	e1 := s.Scenario("fig5", "bv5/1024")
	e1.Metrics.Add(Ops, 10)
	e1.Plan = &PlanStatics{OptimizedOps: 10}
	e2 := s.Scenario("fig5", "bv5/1024")
	if e1 != e2 {
		t.Error("Scenario did not return the existing entry")
	}
	s.Scenario("fig6", "bv5")
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	scs := s.Scenarios()
	if len(scs) != 2 || scs[0].Scenario != "bv5/1024" || scs[0].Metrics.Counters[Ops.String()] != 10 {
		t.Errorf("Scenarios wrong: %+v", scs)
	}
	if scs[1].Plan != nil {
		t.Error("fig6 entry should have no plan statics")
	}
}

func TestStartPprofServesVars(t *testing.T) {
	m := NewMetrics()
	m.Add(KernelSweeps, 3)
	PublishExpvar("obs_test_metrics", m)
	PublishExpvar("obs_test_metrics", m) // duplicate must not panic

	addr, closeFn, err := StartPprof("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn() //nolint:errcheck
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	raw, ok := doc["obs_test_metrics"]
	if !ok {
		t.Fatalf("expvar missing published metrics: have %d keys", len(doc))
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters[KernelSweeps.String()] != 3 {
		t.Errorf("scraped KernelSweeps = %d, want 3", snap.Counters[KernelSweeps.String()])
	}
	// pprof index should answer as well.
	pp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", pp.StatusCode)
	}
}
