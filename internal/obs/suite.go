package obs

import "sync"

// Suite collects per-scenario metrics for experiment sweeps: the harness
// opens one entry per (experiment, scenario) cell, records into its
// Metrics, and the driving binary serializes the whole suite into a
// RunMetrics envelope.
type Suite struct {
	mu      sync.Mutex
	entries []*SuiteEntry
	index   map[[2]string]*SuiteEntry
}

// SuiteEntry is one scenario's recorder plus its static plan metrics.
type SuiteEntry struct {
	Experiment string
	Scenario   string
	Metrics    *Metrics
	Plan       *PlanStatics
}

// NewSuite returns an empty suite.
func NewSuite() *Suite {
	return &Suite{index: make(map[[2]string]*SuiteEntry)}
}

// Scenario returns the entry for (experiment, scenario), creating it on
// first use. Entries keep insertion order in the serialized output.
func (s *Suite) Scenario(experiment, scenario string) *SuiteEntry {
	key := [2]string{experiment, scenario}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.index[key]; e != nil {
		return e
	}
	e := &SuiteEntry{Experiment: experiment, Scenario: scenario, Metrics: NewMetrics()}
	s.index[key] = e
	s.entries = append(s.entries, e)
	return e
}

// Len returns the number of scenarios recorded so far.
func (s *Suite) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Scenarios snapshots every entry for serialization, in insertion order.
func (s *Suite) Scenarios() []ScenarioMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ScenarioMetrics, len(s.entries))
	for i, e := range s.entries {
		out[i] = ScenarioMetrics{
			Experiment: e.Experiment,
			Scenario:   e.Scenario,
			Plan:       e.Plan,
			Metrics:    e.Metrics.Snapshot(),
		}
	}
	return out
}
