package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file renders live Metrics in the Prometheus text exposition
// format (version 0.0.4) so any scraper — or curl — can watch a run.
// Histograms become the conventional cumulative series: one
// `<name>_bucket{le="..."}` per populated boundary plus `le="+Inf"`,
// and `<name>_sum` / `<name>_count`. All metric names carry the
// `repro_` prefix; concurrent sources (per-scenario suites, aggregate
// recorders) are distinguished by a `job` label.

// promNamespace prefixes every exposed metric name.
const promNamespace = "repro"

// Exporter serves registered Metrics (and, optionally, the latest
// runtime Sampler reading) in Prometheus text exposition format. The
// zero value is unusable; construct with NewExporter. Safe for
// concurrent use.
type Exporter struct {
	mu      sync.Mutex
	jobs    []promJob
	sampler *Sampler
}

type promJob struct {
	name string
	m    *Metrics
}

// NewExporter returns an empty Exporter; mount it at /metrics via
// StartPprof or http.Handle.
func NewExporter() *Exporter { return &Exporter{} }

// Register adds a Metrics source under the given job label. Registering
// the same job again replaces the source (the latest wins), so a CLI
// can re-register between scenarios.
func (e *Exporter) Register(job string, m *Metrics) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.jobs {
		if e.jobs[i].name == job {
			e.jobs[i].m = m
			return
		}
	}
	e.jobs = append(e.jobs, promJob{name: job, m: m})
}

// AttachSampler adds runtime gauges (heap, GC, goroutines) from the
// sampler's most recent reading to every exposition.
func (e *Exporter) AttachSampler(s *Sampler) {
	e.mu.Lock()
	e.sampler = s
	e.mu.Unlock()
}

// ServeHTTP implements http.Handler: one full exposition per scrape.
func (e *Exporter) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = e.WriteExposition(w)
}

// WriteExposition renders every registered source as one Prometheus
// text document.
func (e *Exporter) WriteExposition(w io.Writer) error {
	e.mu.Lock()
	jobs := append([]promJob(nil), e.jobs...)
	sampler := e.sampler
	e.mu.Unlock()

	b := bufio.NewWriter(w)
	// Counters.
	for c := Counter(0); c < numCounters; c++ {
		name := fmt.Sprintf("%s_%s_total", promNamespace, c)
		fmt.Fprintf(b, "# HELP %s Cumulative %s across the run.\n# TYPE %s counter\n", name, c, name)
		for _, j := range jobs {
			fmt.Fprintf(b, "%s{job=%q} %d\n", name, j.name, j.m.Counter(c))
		}
	}
	// Gauges.
	for g := Gauge(0); g < numGauges; g++ {
		name := fmt.Sprintf("%s_%s", promNamespace, g)
		fmt.Fprintf(b, "# HELP %s High-water %s.\n# TYPE %s gauge\n", name, g, name)
		for _, j := range jobs {
			fmt.Fprintf(b, "%s{job=%q} %d\n", name, j.name, j.m.Gauge(g))
		}
	}
	// Phase timings (one family, phase label).
	{
		name := promNamespace + "_phase_ns_total"
		fmt.Fprintf(b, "# HELP %s Cumulative wall-clock nanoseconds per pipeline phase.\n# TYPE %s counter\n", name, name)
		for _, j := range jobs {
			for p := Phase(0); p < numPhases; p++ {
				fmt.Fprintf(b, "%s{job=%q,phase=%q} %d\n", name, j.name, p.String(), j.m.PhaseNanos(p))
			}
		}
	}
	// Histograms: cumulative buckets + sum + count.
	for h := Hist(0); h < numHists; h++ {
		name := fmt.Sprintf("%s_%s", promNamespace, h)
		fmt.Fprintf(b, "# HELP %s Distribution of %s.\n# TYPE %s histogram\n", name, h, name)
		for _, j := range jobs {
			hist := j.m.Hist(h)
			var cum int64
			for i := 0; i < NumHistBuckets; i++ {
				c := hist.Bucket(i)
				if c == 0 {
					continue
				}
				cum += c
				fmt.Fprintf(b, "%s_bucket{job=%q,le=%q} %d\n", name, j.name, strconv.FormatInt(HistBucketUpper(i), 10), cum)
			}
			fmt.Fprintf(b, "%s_bucket{job=%q,le=\"+Inf\"} %d\n", name, j.name, hist.Count())
			fmt.Fprintf(b, "%s_sum{job=%q} %d\n", name, j.name, hist.Sum())
			fmt.Fprintf(b, "%s_count{job=%q} %d\n", name, j.name, hist.Count())
		}
	}
	// Runtime gauges from the sampler's latest reading.
	if sampler != nil {
		if sm, ok := sampler.Last(); ok {
			writeRuntimeGauge(b, "runtime_heap_alloc_bytes", "Heap bytes in use at the last sample.", "gauge", float64(sm.HeapAllocBytes))
			writeRuntimeGauge(b, "runtime_heap_sys_bytes", "Heap bytes obtained from the OS at the last sample.", "gauge", float64(sm.HeapSysBytes))
			writeRuntimeGauge(b, "runtime_goroutines", "Goroutine count at the last sample.", "gauge", float64(sm.Goroutines))
			writeRuntimeGauge(b, "runtime_gc_cycles_total", "Completed GC cycles.", "counter", float64(sm.NumGC))
			writeRuntimeGauge(b, "runtime_gc_pause_ns_total", "Cumulative GC stop-the-world pause nanoseconds.", "counter", float64(sm.GCPauseTotalNs))
		}
	}
	return b.Flush()
}

func writeRuntimeGauge(w io.Writer, suffix, help, typ string, v float64) {
	name := promNamespace + "_" + suffix
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %.0f\n", name, help, name, typ, name, v)
}

// ValidateExposition parses a Prometheus text document and checks the
// structural invariants a scraper relies on: every sample line parses,
// and for each family declared `# TYPE ... histogram` and label set, the
// `_bucket` series is cumulative (non-decreasing in le, le sorted),
// terminates in `le="+Inf"`, and agrees with `_count`; `_sum` must be
// present. Returns nil on a well-formed document.
func ValidateExposition(r io.Reader) error {
	type bucketPoint struct {
		le  float64
		val float64
	}
	histFamilies := map[string]bool{}
	buckets := map[string][]bucketPoint{} // family + label-set (sans le) -> points in order
	counts := map[string]float64{}
	sums := map[string]bool{}
	lines := 0

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" && fields[3] == "histogram" {
				histFamilies[fields[2]] = true
			}
			continue
		}
		lines++
		name, labels, valStr, err := splitSample(line)
		if err != nil {
			return fmt.Errorf("line %q: %w", line, err)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("line %q: bad value: %w", line, err)
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			family := strings.TrimSuffix(name, "_bucket")
			if !histFamilies[family] {
				continue
			}
			le, rest, err := extractLE(labels)
			if err != nil {
				return fmt.Errorf("line %q: %w", line, err)
			}
			key := family + "{" + rest + "}"
			buckets[key] = append(buckets[key], bucketPoint{le: le, val: val})
		case strings.HasSuffix(name, "_count"):
			family := strings.TrimSuffix(name, "_count")
			if histFamilies[family] {
				counts[family+"{"+labels+"}"] = val
			}
		case strings.HasSuffix(name, "_sum"):
			family := strings.TrimSuffix(name, "_sum")
			if histFamilies[family] {
				sums[family+"{"+labels+"}"] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lines == 0 {
		return fmt.Errorf("empty exposition")
	}
	for key, pts := range buckets {
		if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].le < pts[j].le }) {
			return fmt.Errorf("%s: buckets not sorted by le", key)
		}
		last := pts[len(pts)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("%s: missing le=\"+Inf\" bucket", key)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].val < pts[i-1].val {
				return fmt.Errorf("%s: bucket counts not cumulative at le=%g", key, pts[i].le)
			}
		}
		count, ok := counts[key]
		if !ok {
			return fmt.Errorf("%s: missing _count series", key)
		}
		if count != last.val {
			return fmt.Errorf("%s: _count %g != +Inf bucket %g", key, count, last.val)
		}
		if !sums[key] {
			return fmt.Errorf("%s: missing _sum series", key)
		}
	}
	for key := range counts {
		if _, ok := buckets[key]; !ok {
			return fmt.Errorf("%s: _count without _bucket series", key)
		}
	}
	return nil
}

// splitSample parses `name{labels} value` or `name value`.
func splitSample(line string) (name, labels, value string, err error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced braces")
		}
		name = line[:i]
		labels = line[i+1 : j]
		value = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", "", "", fmt.Errorf("want `name value`")
		}
		name, value = fields[0], fields[1]
	}
	if name == "" || value == "" {
		return "", "", "", fmt.Errorf("missing name or value")
	}
	return name, labels, value, nil
}

// extractLE pulls the le label out of a label string, returning its
// numeric value and the remaining labels (the series identity).
func extractLE(labels string) (le float64, rest string, err error) {
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	found := false
	for _, p := range parts {
		if v, ok := strings.CutPrefix(strings.TrimSpace(p), "le="); ok {
			raw := strings.Trim(v, `"`)
			found = true
			if raw == "+Inf" {
				le = math.Inf(1)
			} else if le, err = strconv.ParseFloat(raw, 64); err != nil {
				return 0, "", fmt.Errorf("bad le %q: %w", raw, err)
			}
			continue
		}
		kept = append(kept, p)
	}
	if !found {
		return 0, "", fmt.Errorf("bucket line without le label")
	}
	return le, strings.Join(kept, ","), nil
}
