package obs

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeSample is one point-in-time reading of the Go runtime: heap
// usage, GC activity and goroutine count. Pause fields are cumulative
// (process-lifetime) totals from runtime.MemStats.
type RuntimeSample struct {
	AtNanos        int64  `json:"t_ns"` // since sampler start
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	NumGC          uint32 `json:"num_gc"`
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`
	Goroutines     int    `json:"goroutines"`
}

// Sampler polls runtime.MemStats and the goroutine count on a fixed
// interval from a background goroutine, keeping the most recent samples
// in a bounded ring buffer. runtime.ReadMemStats stops the world
// briefly, so intervals below ~10ms are clamped up; the executors' own
// hot paths are never touched. Stop the sampler before reading final
// results from a benchmark run.
type Sampler struct {
	interval time.Duration
	start    time.Time
	stop     chan struct{}
	done     chan struct{}

	mu    sync.Mutex
	ring  []RuntimeSample
	next  int   // ring write cursor
	total int64 // lifetime samples taken
}

// DefaultSamplerCapacity bounds the ring buffer when StartSampler is
// given a non-positive capacity.
const DefaultSamplerCapacity = 4096

// minSamplerInterval floors the polling period: ReadMemStats is a
// stop-the-world operation and should not dominate the run.
const minSamplerInterval = 10 * time.Millisecond

// StartSampler begins polling at the given interval, retaining up to
// capacity samples (older samples are overwritten). One sample is taken
// synchronously before returning, so Last is immediately meaningful.
func StartSampler(interval time.Duration, capacity int) *Sampler {
	if interval < minSamplerInterval {
		interval = minSamplerInterval
	}
	if capacity <= 0 {
		capacity = DefaultSamplerCapacity
	}
	s := &Sampler{
		interval: interval,
		start:    time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		ring:     make([]RuntimeSample, 0, capacity),
	}
	s.sample()
	go s.loop()
	return s
}

func (s *Sampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.sample()
		}
	}
}

func (s *Sampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	sm := RuntimeSample{
		AtNanos:        int64(time.Since(s.start)),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		NumGC:          ms.NumGC,
		GCPauseTotalNs: ms.PauseTotalNs,
		Goroutines:     runtime.NumGoroutine(),
	}
	s.mu.Lock()
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, sm)
	} else {
		s.ring[s.next] = sm
	}
	s.next = (s.next + 1) % cap(s.ring)
	s.total++
	s.mu.Unlock()
}

// Stop halts the polling goroutine, taking one final sample first so
// the buffer reflects end-of-run state. Stop is idempotent-unsafe: call
// it exactly once.
func (s *Sampler) Stop() {
	close(s.stop)
	<-s.done
	s.sample()
}

// Total returns the lifetime number of samples taken (including any
// that the ring has since overwritten).
func (s *Sampler) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Last returns the most recent sample, or false when none exists.
func (s *Sampler) Last() (RuntimeSample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) == 0 {
		return RuntimeSample{}, false
	}
	i := s.next - 1
	if i < 0 {
		i = len(s.ring) - 1
	}
	return s.ring[i], true
}

// Samples returns the retained samples in chronological order.
func (s *Sampler) Samples() []RuntimeSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RuntimeSample, 0, len(s.ring))
	if len(s.ring) < cap(s.ring) {
		return append(out, s.ring...)
	}
	out = append(out, s.ring[s.next:]...)
	return append(out, s.ring[:s.next]...)
}
