package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// This file implements the distribution layer of the observability
// package: lock-free log-bucketed histograms with *fixed* power-of-two
// bucket boundaries. Fixed boundaries are what makes worker-local
// histograms mergeable exactly — every histogram of the same Hist kind
// uses the identical bucket grid, so merging is integer addition per
// bucket and the merged result is independent of merge order. (Adaptive
// schemes like HDR auto-ranging or t-digests trade that exactness for
// resolution; the executors here are measured in nanoseconds and depths,
// where 2x-wide buckets with interpolated quantiles are plenty.)
//
// Recording is hot-path adjacent: one bits.Len64, three atomic adds and a
// CAS-max — no locks, no allocation — so executors can observe per-trial
// latencies and per-kernel sweep durations whenever a Recorder is
// attached without perturbing the run.

// Hist enumerates the distribution metrics the executors record.
type Hist uint8

// Distribution metrics. Latency histograms are in nanoseconds; depth
// histograms are dimensionless.
const (
	// HistTrialLatency is the end-to-end wall time attributed to one
	// Monte Carlo trial (ns). Plan executors amortize the shared prefix
	// work of an emit batch equally over the batch's trials, so the
	// histogram's count always equals the trials emitted.
	HistTrialLatency Hist = iota
	// HistKernelSweep is the duration of one compiled-kernel sweep over
	// a state vector (ns), striped or serial.
	HistKernelSweep
	// HistSnapshotLifetime is the wall time between a prefix snapshot's
	// push and its drop (ns) — how long stored vectors actually live.
	HistSnapshotLifetime
	// HistRestoreDepth is the snapshot-stack depth at each budget-forced
	// restore (dimensionless): 0 means the plan replayed from |0...0>.
	HistRestoreDepth
	// HistBatchVariantOps is the distribution of independent per-variant
	// plan op counts across an executed batch (dimensionless) — the
	// sum-of-parts side of the batch savings accounting, one observation
	// per variant.
	HistBatchVariantOps
	// HistUncomputeDepth is the distribution of rollback sizes: the
	// number of logical ops (gates plus injections) each uncompute
	// segment ran backwards (dimensionless), one observation per
	// rollback.
	HistUncomputeDepth
	// HistBatchLanes is the distribution of lane counts per batched
	// segment execution (dimensionless), one observation per RunBatch —
	// how full the SoA register actually runs.
	HistBatchLanes
	// HistJobLatency is the end-to-end wall time of one simulation-
	// service job, submission to completion (ns): queue wait plus
	// execution.
	HistJobLatency
	// HistJobQueueWait is the time one service job spent queued before a
	// worker picked it up (ns).
	HistJobQueueWait

	numHists
)

var histNames = [numHists]string{
	HistTrialLatency:     "trial_latency_ns",
	HistKernelSweep:      "kernel_sweep_ns",
	HistSnapshotLifetime: "snapshot_lifetime_ns",
	HistRestoreDepth:     "restore_depth",
	HistBatchVariantOps:  "batch_variant_ops",
	HistUncomputeDepth:   "uncompute_depth",
	HistBatchLanes:       "batch_lanes",
	HistJobLatency:       "job_latency_ns",
	HistJobQueueWait:     "job_queue_wait_ns",
}

// String returns the histogram's canonical (JSON/Prometheus) name.
func (h Hist) String() string { return histNames[h] }

// NumHistBuckets is the fixed bucket count of every Histogram: bucket 0
// holds values <= 0, bucket i (i >= 1) holds values in [2^(i-1), 2^i).
const NumHistBuckets = 64

// histBucket maps a value to its bucket index.
func histBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// HistBucketUpper returns the inclusive upper bound of bucket i
// (2^i - 1); the last bucket is unbounded (MaxInt64).
func HistBucketUpper(i int) int64 {
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// histBucketLower returns the inclusive lower bound of bucket i.
func histBucketLower(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1) << uint(i-1)
}

// Histogram is a lock-free log-bucketed distribution: fixed power-of-two
// boundaries, exact count/sum/max, interpolated quantiles. The zero value
// is ready to use; a Histogram must not be copied after first use. All
// methods are safe for concurrent use.
type Histogram struct {
	buckets [NumHistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[histBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Bucket returns the count of bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i].Load() }

// Merge adds another histogram's contents into h. Because every
// Histogram shares the same fixed bucket grid, merging is exact: the
// merged bucket counts, count, sum and max are identical for every merge
// order. The source is read atomically but not frozen; merge quiescent
// histograms for exact results.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.buckets {
		if c := o.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	m := o.max.Load()
	for {
		cur := h.max.Load()
		if m <= cur || h.max.CompareAndSwap(cur, m) {
			return
		}
	}
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation within the containing bucket, clamped to the observed
// max. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < NumHistBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= rank {
			lo := float64(histBucketLower(i))
			hi := float64(HistBucketUpper(i))
			if m := float64(h.max.Load()); m < hi {
				hi = m // the top bucket extends only to the observed max
			}
			if hi < lo {
				return lo
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return float64(h.max.Load())
}

// HistBucketCount is one non-empty bucket in a histogram snapshot: LE is
// the bucket's inclusive upper bound, Count the values it holds.
type HistBucketCount struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time, JSON-friendly copy of a
// Histogram: exact count/sum/max, estimated quantiles, and the non-empty
// buckets in increasing-bound order (sparse — empty buckets are omitted;
// consumers reconstruct cumulative series from the fixed grid).
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Max     int64             `json:"max"`
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
	Buckets []HistBucketCount `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	for i := 0; i < NumHistBuckets; i++ {
		if c := h.buckets[i].Load(); c != 0 {
			s.Buckets = append(s.Buckets, HistBucketCount{LE: HistBucketUpper(i), Count: c})
		}
	}
	return s
}
