// Package obs is the execution-observability layer: structured run
// metrics (counters, high-water gauges, per-phase wall-clock timings), an
// optional plan-trace event stream, and profiling endpoints
// (net/http/pprof + expvar) shared by the CLI binaries.
//
// The design is allocation-conscious so that observability never shows up
// on the paper's hot path:
//
//   - Executors hold a Recorder interface value that is nil when
//     observability is off, so every instrumented site costs one
//     nil-check when disabled.
//   - The standard Metrics recorder is a fixed array of atomic counters:
//     recording never allocates and never takes a lock.
//   - Trace events are fixed-size structs appended to a bounded buffer.
//
// Metrics are strictly an observer: they must never perturb the logical
// basic-operation accounting (executors report ops == plan.OptimizedOps()
// with or without a recorder attached — the sim test suite enforces it).
package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync/atomic"
	"time"
)

// Counter enumerates the monotonically increasing run counters.
type Counter uint8

// Run counters. Ops and Copies mirror the executed Result fields; the
// snapshot and kernel counters expose what the Result aggregates hide.
const (
	// Ops counts basic operations: gate applications plus injected
	// Paulis, the paper's normalized-computation numerator.
	Ops Counter = iota
	// Copies counts whole-state copies (snapshot pushes, budget
	// restores, subtree entry clones).
	Copies
	// SnapshotPushes counts prefix states pushed onto snapshot stacks.
	SnapshotPushes
	// SnapshotDrops counts snapshots popped (dropped after last use).
	SnapshotDrops
	// SnapshotRestores counts budget-forced restores (resume from the
	// top snapshot, or from scratch when nothing is stored).
	SnapshotRestores
	// TrialsEmitted counts per-trial classical outcomes produced.
	TrialsEmitted
	// TasksSpawned counts subtree tasks handed to the worker pool.
	TasksSpawned
	// KernelSweeps counts compiled fused-kernel invocations.
	KernelSweeps
	// StripeBarriers counts kernel sweeps that ran striped (each striped
	// sweep is one WaitGroup barrier).
	StripeBarriers
	// BatchVariants counts circuit variants executed through shared
	// batch plans (reorder.BatchPlan).
	BatchVariants
	// BatchOpsSaved counts basic operations the shared batch trie
	// eliminated versus independent per-variant plans (the batch
	// analysis' SavedOps, accumulated per executed batch).
	BatchOpsSaved
	// SegCacheHits counts compiled-segment reuses served by the
	// content-addressed cross-program cache (statevec).
	SegCacheHits
	// SegCacheMisses counts segment lowerings the content-addressed
	// cache could not serve.
	SegCacheMisses
	// SegCacheEvictions counts segments evicted from the bounded
	// content-addressed cache (second-chance clock sweep; only a
	// capacity-configured cache ever evicts).
	SegCacheEvictions
	// SegCacheCollisions counts content-cache hits rejected because the
	// stored entry's cheap discriminators (layer count, lowered-op
	// count) disagreed with the requesting program — a 64-bit digest
	// collision. The requester falls back to a private compile.
	SegCacheCollisions
	// PoolDrops counts buffers released to a BufferPool size class that
	// was already at its retention cap and therefore handed to the GC
	// instead of the free list.
	PoolDrops
	// UncomputeSegments counts reverse-executed rollback segments (each
	// rollback of one branch suffix is one segment, however many layer
	// ranges and injections it undoes).
	UncomputeSegments
	// UncomputeOps counts basic operations spent running gates backwards
	// (dagger applications and reverse Pauli injections). Kept separate
	// from Ops so the forward count still equals the plan's
	// OptimizedOps invariant.
	UncomputeOps
	// PolicySnapshotDecisions counts branch points where the restore
	// policy chose to store a real snapshot.
	PolicySnapshotDecisions
	// PolicyUncomputeDecisions counts branch points where the restore
	// policy chose a virtual (uncompute) branch point instead of a
	// snapshot.
	PolicyUncomputeDecisions
	// BatchSweeps counts batched kernel invocations — one per kernel per
	// RunBatch call, however many lanes it swept. KernelSweeps still counts
	// logical per-state sweeps (a batched sweep over K states adds K), so
	// KernelSweeps stays comparable across execution modes while
	// BatchSweeps exposes the dispatch amortization.
	BatchSweeps
	// PoolHits counts amplitude-buffer acquisitions served from the
	// statevec.BufferPool free lists (no allocation).
	PoolHits
	// PoolMisses counts pool acquisitions that had to allocate. A
	// steady-state run shows misses only during warm-up.
	PoolMisses
	// JobsAccepted counts simulation-service jobs admitted into the
	// queue (cmd/qsimd).
	JobsAccepted
	// JobsRejected counts submissions refused by admission control
	// (queue full → 429, or draining → 503).
	JobsRejected
	// JobsCompleted counts service jobs that finished successfully.
	JobsCompleted
	// JobsFailed counts service jobs that finished with an error.
	JobsFailed
	// TracesStarted counts root spans opened by a trace.Tracer (one per
	// traced request or CLI run).
	TracesStarted
	// TracesKept counts finished traces retained by the tail sampler
	// (errored, slow-tail, or rate-sampled).
	TracesKept
	// TracesDropped counts finished traces the tail sampler discarded.
	TracesDropped
	// SpansStarted counts spans opened across all traces (roots included).
	SpansStarted
	// SpansDropped counts child spans refused because their trace hit its
	// per-trace span cap.
	SpansDropped

	numCounters
)

var counterNames = [numCounters]string{
	Ops:              "ops",
	Copies:           "copies",
	SnapshotPushes:   "snapshot_pushes",
	SnapshotDrops:    "snapshot_drops",
	SnapshotRestores: "snapshot_restores",
	TrialsEmitted:    "trials_emitted",
	TasksSpawned:     "tasks_spawned",
	KernelSweeps:     "kernel_sweeps",
	StripeBarriers:   "stripe_barriers",
	BatchVariants:    "batch_variants",
	BatchOpsSaved:    "batch_ops_saved",
	SegCacheHits:       "segcache_hits",
	SegCacheMisses:     "segcache_misses",
	SegCacheEvictions:  "segcache_evictions",
	SegCacheCollisions: "segcache_collisions",
	PoolDrops:          "pool_drops",

	UncomputeSegments:        "uncompute_segments",
	UncomputeOps:             "uncompute_ops",
	PolicySnapshotDecisions:  "policy_snapshot",
	PolicyUncomputeDecisions: "policy_uncompute",
	BatchSweeps:              "batch_sweeps",
	PoolHits:                 "pool_hits",
	PoolMisses:               "pool_misses",
	JobsAccepted:             "jobs_accepted",
	JobsRejected:             "jobs_rejected",
	JobsCompleted:            "jobs_completed",
	JobsFailed:               "jobs_failed",
	TracesStarted:            "traces_started",
	TracesKept:               "traces_kept",
	TracesDropped:            "traces_dropped",
	SpansStarted:             "spans_started",
	SpansDropped:             "spans_dropped",
}

// String returns the counter's canonical (JSON) name.
func (c Counter) String() string { return counterNames[c] }

// Gauge enumerates the high-water gauges.
type Gauge uint8

// High-water gauges.
const (
	// MSVHighWater is the peak number of concurrently stored state
	// vectors — the paper's MSV metric, taken across all goroutines.
	MSVHighWater Gauge = iota
	// QueueDepthHighWater is the peak number of jobs queued in the
	// simulation service's admission queue (across all tenants).
	QueueDepthHighWater

	numGauges
)

var gaugeNames = [numGauges]string{
	MSVHighWater:        "msv_high_water",
	QueueDepthHighWater: "queue_depth_high_water",
}

// String returns the gauge's canonical (JSON) name.
func (g Gauge) String() string { return gaugeNames[g] }

// Phase enumerates the timed pipeline phases.
type Phase uint8

// Pipeline phases, in execution order.
const (
	// PhaseTrialGen is Monte Carlo trial generation.
	PhaseTrialGen Phase = iota
	// PhaseSort is the reorder sort of the trial set (Algorithm 1's
	// grouping step).
	PhaseSort
	// PhasePlanBuild is execution-plan (or split-plan) construction.
	PhasePlanBuild
	// PhaseExecute is plan execution with real state vectors.
	PhaseExecute

	numPhases
)

var phaseNames = [numPhases]string{
	PhaseTrialGen:  "trial_gen",
	PhaseSort:      "sort",
	PhasePlanBuild: "plan_build",
	PhaseExecute:   "execute",
}

// String returns the phase's canonical (JSON) name.
func (p Phase) String() string { return phaseNames[p] }

// EventKind enumerates plan-trace events.
type EventKind uint8

// Plan-trace event kinds.
const (
	// EvPush: a prefix snapshot was stored.
	EvPush EventKind = iota
	// EvDrop: a snapshot was dropped at its last use.
	EvDrop
	// EvRestore: a budgeted plan resumed from the top snapshot (or from
	// scratch).
	EvRestore
	// EvSpawn: the trunk handed a subtree task (with a cloned entry
	// state) to the worker pool.
	EvSpawn
	// EvEmit: one or more trial outcomes were emitted.
	EvEmit
	// EvUncompute: a branch suffix was rolled back by reverse execution
	// instead of a snapshot pop/restore.
	EvUncompute

	numEventKinds
)

var eventNames = [numEventKinds]string{
	EvPush:      "push",
	EvDrop:      "drop",
	EvRestore:   "restore",
	EvSpawn:     "spawn",
	EvEmit:      "emit",
	EvUncompute: "uncompute",
}

// String returns the event kind's canonical (JSON) name.
func (k EventKind) String() string { return eventNames[k] }

// Recorder is the sink the executors report into. All methods must be
// safe for concurrent use; implementations should treat every call as
// hot-path adjacent (no locks on Add/SetMax, no allocation).
//
// A nil Recorder means observability is off; instrumented code guards
// every call with a single nil-check.
type Recorder interface {
	// Add increments a counter by delta.
	Add(c Counter, delta int64)
	// SetMax raises a gauge to v when v exceeds its current value.
	SetMax(g Gauge, v int64)
	// PhaseDone accumulates d into a phase's total wall-clock time.
	PhaseDone(p Phase, d time.Duration)
	// Event reports one plan-trace event at the given snapshot-stack
	// depth. Worker identifies the reporting goroutine (-1 = the subtree
	// trunk, 0 = a sequential executor, 0..n-1 = pool workers).
	// Metrics-only recorders ignore events.
	Event(kind EventKind, worker, depth int)
	// Observe records one value into a distribution (latency in
	// nanoseconds, or a dimensionless depth). Trace-only recorders
	// ignore observations.
	Observe(h Hist, v int64)
}

// StartPhase begins timing a phase and returns the function that stops
// the clock and records the duration. Safe on a nil recorder (returns a
// no-op), so callers can time unconditionally:
//
//	done := obs.StartPhase(rec, obs.PhaseExecute)
//	res, err := sim.ExecutePlan(c, plan, opt)
//	done()
func StartPhase(rec Recorder, p Phase) func() {
	if rec == nil {
		return func() {}
	}
	start := time.Now()
	return func() { rec.PhaseDone(p, time.Since(start)) }
}

// Metrics is the standard Recorder: lock-free atomic counters, gauges
// and phase timings. The zero value is ready to use; Metrics must not be
// copied after first use.
type Metrics struct {
	counters [numCounters]atomic.Int64
	gauges   [numGauges]atomic.Int64
	phases   [numPhases]atomic.Int64 // nanoseconds
	hists    [numHists]Histogram
}

// NewMetrics returns an empty Metrics recorder.
func NewMetrics() *Metrics { return &Metrics{} }

// Add implements Recorder.
func (m *Metrics) Add(c Counter, delta int64) { m.counters[c].Add(delta) }

// SetMax implements Recorder: a compare-and-swap high-water update.
func (m *Metrics) SetMax(g Gauge, v int64) {
	for {
		cur := m.gauges[g].Load()
		if v <= cur || m.gauges[g].CompareAndSwap(cur, v) {
			return
		}
	}
}

// PhaseDone implements Recorder.
func (m *Metrics) PhaseDone(p Phase, d time.Duration) { m.phases[p].Add(int64(d)) }

// Event implements Recorder as a no-op: Metrics aggregates, it does not
// record streams. Combine with a Trace via Multi for both.
func (m *Metrics) Event(EventKind, int, int) {}

// Observe implements Recorder: record one value into a log-bucketed
// histogram (lock-free, allocation-free).
func (m *Metrics) Observe(h Hist, v int64) { m.hists[h].Observe(v) }

// Counter returns a counter's current value.
func (m *Metrics) Counter(c Counter) int64 { return m.counters[c].Load() }

// Gauge returns a gauge's current high-water value.
func (m *Metrics) Gauge(g Gauge) int64 { return m.gauges[g].Load() }

// PhaseNanos returns a phase's accumulated wall-clock nanoseconds.
func (m *Metrics) PhaseNanos(p Phase) int64 { return m.phases[p].Load() }

// Hist returns the recorder's live histogram for h (never nil), for
// quantile queries and exact cross-recorder merging.
func (m *Metrics) Hist(h Hist) *Histogram { return &m.hists[h] }

// Snapshot captures the current values as a JSON-friendly value. Zero
// counters and phases are included so consumers see a stable schema.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64, int(numCounters)),
		Gauges:     make(map[string]int64, int(numGauges)),
		PhaseNs:    make(map[string]int64, int(numPhases)),
		Histograms: make(map[string]HistogramSnapshot, int(numHists)),
	}
	for c := Counter(0); c < numCounters; c++ {
		s.Counters[c.String()] = m.counters[c].Load()
	}
	for g := Gauge(0); g < numGauges; g++ {
		s.Gauges[g.String()] = m.gauges[g].Load()
	}
	for p := Phase(0); p < numPhases; p++ {
		s.PhaseNs[p.String()] = m.phases[p].Load()
	}
	for h := Hist(0); h < numHists; h++ {
		s.Histograms[h.String()] = m.hists[h].Snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a Metrics recorder, keyed by the
// canonical counter/gauge/phase names.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	PhaseNs    map[string]int64             `json:"phase_ns"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// multi fans every record out to several recorders.
type multi []Recorder

func (m multi) Add(c Counter, delta int64) {
	for _, r := range m {
		r.Add(c, delta)
	}
}

func (m multi) SetMax(g Gauge, v int64) {
	for _, r := range m {
		r.SetMax(g, v)
	}
}

func (m multi) PhaseDone(p Phase, d time.Duration) {
	for _, r := range m {
		r.PhaseDone(p, d)
	}
}

func (m multi) Event(kind EventKind, worker, depth int) {
	for _, r := range m {
		r.Event(kind, worker, depth)
	}
}

func (m multi) Observe(h Hist, v int64) {
	for _, r := range m {
		r.Observe(h, v)
	}
}

// Multi combines recorders into one. Nil inputs are skipped; with zero or
// one live recorder it returns nil or that recorder directly, so the
// hot-path nil-check and single-sink fast path survive composition.
func Multi(rs ...Recorder) Recorder {
	var live multi
	for _, r := range rs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// RunMetrics is the JSON envelope the CLI binaries write for -metrics
// (and repro writes per experiment scenario). The schema is documented in
// EXPERIMENTS.md ("Run metrics JSON").
type RunMetrics struct {
	// Binary names the producing command (qsim, qsweep, kernbench,
	// repro).
	Binary string `json:"binary"`
	// Circuit/Qubits/Trials/Seed/Mode describe the workload when the
	// binary runs a single job (qsim); sweep binaries use Scenarios.
	Circuit string `json:"circuit,omitempty"`
	Qubits  int    `json:"qubits,omitempty"`
	Trials  int    `json:"trials,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	Mode    string `json:"mode,omitempty"`
	// Plan holds the static plan analysis the executed counters are
	// checked against.
	Plan *PlanStatics `json:"plan,omitempty"`
	// Result holds the executed reordered Result fields, when a
	// simulation ran.
	Result *ExecStatics `json:"result,omitempty"`
	// Metrics is the aggregated recorder snapshot for the whole run.
	Metrics Snapshot `json:"metrics"`
	// Scenarios holds per-scenario snapshots for sweep/suite binaries.
	Scenarios []ScenarioMetrics `json:"scenarios,omitempty"`
}

// PlanStatics are the static plan metrics embedded in RunMetrics.
type PlanStatics struct {
	BaselineOps  int64   `json:"baseline_ops"`
	OptimizedOps int64   `json:"optimized_ops"`
	Normalized   float64 `json:"normalized"`
	MSV          int     `json:"msv"`
	Copies       int64   `json:"copies"`
}

// ExecStatics are the executed Result fields embedded in RunMetrics.
type ExecStatics struct {
	Ops    int64 `json:"ops"`
	Copies int64 `json:"copies"`
	MSV    int   `json:"msv"`
}

// ScenarioMetrics is one scenario of a sweep or experiment suite.
type ScenarioMetrics struct {
	Experiment string       `json:"experiment,omitempty"`
	Scenario   string       `json:"scenario"`
	Plan       *PlanStatics `json:"plan,omitempty"`
	Metrics    Snapshot     `json:"metrics"`
}

// WriteJSON writes the envelope as indented JSON.
func (rm *RunMetrics) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(rm, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteRunMetrics writes the envelope to a file.
func WriteRunMetrics(path string, rm *RunMetrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rm.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadRunMetrics loads a -metrics file, for validation tooling
// (qsim -verify-metrics, make metrics-smoke).
func ReadRunMetrics(path string) (*RunMetrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rm := &RunMetrics{}
	if err := json.Unmarshal(data, rm); err != nil {
		return nil, err
	}
	return rm, nil
}
