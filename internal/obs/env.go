package obs

import (
	"fmt"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// EnvMeta stamps a benchmark or metrics artifact with enough environment
// metadata to decide, later, whether two measurements are comparable:
// toolchain, platform, parallelism, source revision and wall-clock time.
// Every BENCH_*.json entry carries one.
type EnvMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GitCommit  string `json:"git_commit,omitempty"`
	Timestamp  string `json:"timestamp"` // RFC3339, UTC
}

// CaptureEnv snapshots the current environment. The git commit is
// best-effort (empty when git or the work tree is unavailable); a
// "-dirty" suffix marks uncommitted changes.
func CaptureEnv() EnvMeta {
	return EnvMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitCommit:  gitCommit(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
}

// Fingerprint condenses the comparability-relevant fields (everything
// except commit and timestamp) into one string: entries with equal
// fingerprints were measured on interchangeable configurations.
func (e EnvMeta) Fingerprint() string {
	return fmt.Sprintf("%s/%s/%s/cpu%d/procs%d", e.GoVersion, e.GOOS, e.GOARCH, e.NumCPU, e.GOMAXPROCS)
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	commit := strings.TrimSpace(string(out))
	if commit == "" {
		return ""
	}
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(strings.TrimSpace(string(status))) > 0 {
		commit += "-dirty"
	}
	return commit
}
