package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTraceRecordsEvents(t *testing.T) {
	tr := NewTrace()
	tr.Event(EvPush, 0, 1)
	tr.Event(EvPush, 0, 2)
	tr.Event(EvEmit, 0, 2)
	tr.Event(EvDrop, 0, 1)
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	evs := tr.Events()
	if evs[0].Kind != EvPush || evs[3].Kind != EvDrop {
		t.Errorf("event order wrong: %+v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].AtNanos < evs[i-1].AtNanos {
			t.Errorf("timestamps not monotone: %d before %d", evs[i].AtNanos, evs[i-1].AtNanos)
		}
	}
}

func TestTraceLimitDropsOverflow(t *testing.T) {
	tr := NewTraceLimit(2)
	for i := 0; i < 5; i++ {
		tr.Event(EvPush, 0, i)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", tr.Dropped())
	}
}

func TestTraceJSONNamesKinds(t *testing.T) {
	tr := NewTrace()
	tr.Event(EvRestore, -1, 0)
	tr.Event(EvSpawn, -1, 3)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Events []struct {
			TNs    int64  `json:"t_ns"`
			Kind   string `json:"kind"`
			Worker int    `json:"worker"`
			Depth  int    `json:"depth"`
		} `json:"events"`
		Dropped int64 `json:"dropped"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(doc.Events) != 2 || doc.Events[0].Kind != "restore" || doc.Events[1].Kind != "spawn" {
		t.Errorf("events mangled: %+v", doc.Events)
	}
	if doc.Events[1].Worker != -1 || doc.Events[1].Depth != 3 {
		t.Errorf("worker/depth mangled: %+v", doc.Events[1])
	}
}

func TestTraceSummaryFlameStyle(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 10; i++ {
		tr.Event(EvPush, 0, 0)
		tr.Event(EvDrop, 0, 0)
	}
	tr.Event(EvPush, 0, 1)
	tr.Event(EvEmit, 0, 2)
	s := tr.Summary()
	for _, want := range []string{"peak stack depth 2", "depth  0", "10 push", "10 drop", "1 emit", "#"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestTraceConcurrentUnderRace(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Event(EvPush, w, i%4)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 8*200 {
		t.Errorf("Len = %d, want 1600", tr.Len())
	}
}
