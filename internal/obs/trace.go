package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultTraceLimit bounds a Trace's event buffer: at 24 bytes per event
// the default caps the trace near 24 MB, after which further events are
// counted but not stored.
const DefaultTraceLimit = 1 << 20

// Event is one plan-trace record: a snapshot push/drop/restore, a task
// spawn, or an outcome emission, stamped with the time since the trace
// began, the reporting worker, and the snapshot-stack depth after the
// transition.
type Event struct {
	AtNanos int64     `json:"t_ns"`
	Kind    EventKind `json:"-"`
	Worker  int32     `json:"worker"`
	Depth   int32     `json:"depth"`
}

// MarshalJSON names the kind instead of emitting its integer code.
func (e Event) MarshalJSON() ([]byte, error) {
	type alias Event
	return json.Marshal(struct {
		alias
		Kind string `json:"kind"`
	}{alias(e), e.Kind.String()})
}

// Trace is a Recorder that captures the plan-execution event stream:
// snapshot push/drop/restore and branch-depth transitions during
// ExecutePlan and the subtree executor, for debugging why MSV or copies
// spiked. Counters, gauges and phases are ignored — combine with a
// Metrics via Multi to collect both.
type Trace struct {
	start time.Time
	limit int

	mu      sync.Mutex
	events  []Event
	dropped int64
}

// NewTrace returns a Trace bounded at DefaultTraceLimit events.
func NewTrace() *Trace { return NewTraceLimit(DefaultTraceLimit) }

// NewTraceLimit returns a Trace that stores at most limit events;
// overflow is counted in Dropped instead of growing the buffer.
func NewTraceLimit(limit int) *Trace {
	if limit < 1 {
		limit = 1
	}
	return &Trace{start: time.Now(), limit: limit}
}

// Add implements Recorder as a no-op.
func (t *Trace) Add(Counter, int64) {}

// SetMax implements Recorder as a no-op.
func (t *Trace) SetMax(Gauge, int64) {}

// PhaseDone implements Recorder as a no-op.
func (t *Trace) PhaseDone(Phase, time.Duration) {}

// Observe implements Recorder as a no-op: Trace records the event
// stream, not distributions. Combine with a Metrics via Multi for both.
func (t *Trace) Observe(Hist, int64) {}

// Event implements Recorder: append one bounded-buffer record.
func (t *Trace) Event(kind EventKind, worker, depth int) {
	at := int64(time.Since(t.start))
	t.mu.Lock()
	if len(t.events) < t.limit {
		t.events = append(t.events, Event{AtNanos: at, Kind: kind, Worker: int32(worker), Depth: int32(depth)})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of stored events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events overflowed the buffer.
func (t *Trace) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the stored events in arrival order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// WriteJSON dumps the trace as one JSON document:
//
//	{"events":[{"t_ns":..,"worker":0,"depth":2,"kind":"push"},...],"dropped":0}
func (t *Trace) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	doc := struct {
		Events  []Event `json:"events"`
		Dropped int64   `json:"dropped"`
	}{t.events, t.dropped}
	data, err := json.Marshal(doc)
	t.mu.Unlock()
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Summary renders a flame-style text digest: per snapshot-stack depth,
// the event counts, with a bar proportional to the activity at that
// depth. Deep, busy levels explain MSV and copy spikes at a glance.
func (t *Trace) Summary() string {
	t.mu.Lock()
	events := append([]Event(nil), t.events...)
	dropped := t.dropped
	t.mu.Unlock()

	type row struct{ counts [numEventKinds]int64 }
	byDepth := map[int32]*row{}
	var peak int32
	for _, e := range events {
		r := byDepth[e.Depth]
		if r == nil {
			r = &row{}
			byDepth[e.Depth] = r
		}
		r.counts[e.Kind]++
		if e.Depth > peak {
			peak = e.Depth
		}
	}
	depths := make([]int32, 0, len(byDepth))
	var busiest int64
	for d, r := range byDepth {
		depths = append(depths, d)
		var total int64
		for _, c := range r.counts {
			total += c
		}
		if total > busiest {
			busiest = total
		}
	}
	sort.Slice(depths, func(i, j int) bool { return depths[i] < depths[j] })

	var b strings.Builder
	fmt.Fprintf(&b, "plan trace: %d events (%d dropped), peak stack depth %d\n", len(events), dropped, peak)
	for _, d := range depths {
		r := byDepth[d]
		var total int64
		parts := make([]string, 0, int(numEventKinds))
		for k := EventKind(0); k < numEventKinds; k++ {
			if c := r.counts[k]; c > 0 {
				parts = append(parts, fmt.Sprintf("%d %s", c, k))
				total += c
			}
		}
		const barWidth = 40
		bar := 1
		if busiest > 0 {
			bar = int(total * barWidth / busiest)
			if bar < 1 {
				bar = 1
			}
		}
		fmt.Fprintf(&b, "  depth %2d %-*s| %s\n", d, barWidth+1, strings.Repeat("#", bar), strings.Join(parts, ", "))
	}
	return b.String()
}
