package obs

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// Satellite: StartPprof must release its port on close. Bind :0, scrape
// /metrics and /debug/vars, close, and verify the exact port can be
// re-bound.
func TestStartPprofCloseFreesPort(t *testing.T) {
	e := NewExporter()
	e.Register("httptest", populatedMetrics())
	addr, closeFn, err := StartPprof("127.0.0.1:0", e)
	if err != nil {
		t.Fatal(err)
	}

	body := mustGet(t, "http://"+addr+"/metrics")
	if !strings.Contains(body, `repro_ops_total{job="httptest"} 123`) {
		t.Errorf("/metrics missing counter series; got %d bytes", len(body))
	}
	if err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Errorf("/metrics exposition invalid: %v", err)
	}
	if vars := mustGet(t, "http://"+addr+"/debug/vars"); !strings.Contains(vars, "cmdline") {
		t.Error("/debug/vars not serving expvar")
	}

	if err := closeFn(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The port must be immediately re-bindable once the server is down.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			ln.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("port %s still bound after close: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still answering after close")
	}
}

func TestStartPprofWithoutExporterOmitsMetrics(t *testing.T) {
	addr, closeFn, err := StartPprof("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn() //nolint:errcheck
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics without exporter: status %d, want 404", resp.StatusCode)
	}
}

func mustGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
