GO ?= go

.PHONY: build test race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel executors share MSV trackers and work queues across
# goroutines; always gate changes to them on the race detector.
race:
	$(GO) test -race ./internal/sim/... ./internal/reorder/...

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

verify: build test race
