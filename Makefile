GO ?= go

.PHONY: build test race bench verify verify-deep selftest fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel executors share MSV trackers and work queues across
# goroutines; always gate changes to them on the race detector.
race:
	$(GO) test -race ./internal/sim/... ./internal/reorder/...

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

verify: build test race

# The seeded differential self-test: randomized workloads through every
# executor, cross-checked bit-for-bit against naive execution.
selftest: build
	$(GO) run ./cmd/qsim -selftest -seed 1 -selftest-runs 50

# Short fuzz passes over every fuzz target (one -fuzz per package run).
fuzz-smoke:
	$(GO) test -run ^$$ -fuzz FuzzTrialSerializeRoundTrip -fuzztime 10s ./internal/trial
	$(GO) test -run ^$$ -fuzz FuzzParseQASM -fuzztime 10s ./internal/circuit

# The deep correctness gate: everything verify runs, plus vet, the race
# detector over the whole tree (includes the -short-gated deep
# differential sweep), fuzz smoke, and the CLI self-test.
verify-deep: build
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) fuzz-smoke
	$(MAKE) selftest
