GO ?= go

.PHONY: build vet test race race-verify bench bench-json bench-regress alloc-gate verify verify-deep selftest fuzz-smoke metrics-smoke serve-smoke trace-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel executors share MSV trackers and work queues across
# goroutines; always gate changes to them on the race detector. The obs
# package's histograms and sampler are written to concurrently by every
# parallel executor, so they ride along.
race:
	$(GO) test -race ./internal/sim/... ./internal/reorder/... ./internal/obs/...

# Striped kernel execution splits every compiled sweep across goroutines;
# race-verify drives the compiled paths (fusion + striping) under the race
# detector, including an end-to-end striped CLI run.
race-verify:
	$(GO) test -race ./internal/statevec/... ./internal/sim/... ./internal/reorder/... ./internal/difftest/... ./internal/obs/...
	$(GO) run -race ./cmd/qsim -bench qft5 -mode both -fuse exact -stripes 4 -trials 256
	$(GO) run -race ./cmd/qsim -bench qv_n5d5 -mode both -fuse numeric -stripes 4 -trials 256
	$(GO) run -race ./cmd/qsim -bench qv_n5d5 -mode both -restore adaptive -budget 2 -workers 4 -trials 256
	$(GO) run -race ./cmd/qsim -bench qft5 -mode both -restore uncompute -fuse exact -trials 256
	$(GO) run -race ./cmd/qsim -bench qv_n5d5 -mode both -par subtree-batched -lanes 4 -workers 4 -fuse exact -trials 256

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

# Machine-readable kernel/fusion benchmark results for regression tracking.
bench-json:
	$(GO) run ./cmd/kernbench -out BENCH_kernels.json

# Statistical perf-regression gate: run the quick qbench suite — which
# includes the cross-circuit batch scenarios (shared trie vs per-variant
# plans) — and compare against the committed trajectory (Mann-Whitney U,
# alpha 0.05) without appending, so the working tree stays clean. Exits
# nonzero on a significant regression. Append a real trajectory point with:
#   go run ./cmd/qbench
bench-regress: build
	$(GO) run ./cmd/qbench -quick -append=false -suite quick

# Zero-alloc steady-state gate: run the batched subtree executor at
# worker counts 1/2/4/8 over one warm buffer arena and fail if the
# steady-state allocs/trial (minimum Mallocs delta across repetitions)
# grows with the worker count — the pooled-arena contract of the batched
# engine.
alloc-gate: build
	$(GO) run ./cmd/qbench -quick -append=false -alloc-gate

verify: build vet test race

vet:
	$(GO) vet ./...

# End-to-end observability check: run a QV circuit with metrics capture,
# then re-read the file and verify the executed counters agree with the
# static plan analysis (ops == OptimizedOps, emitted == trials, ...).
# -prom-smoke additionally serves the recorded metrics on an ephemeral
# port, scrapes /metrics over HTTP in-process, and validates the
# Prometheus text exposition format.
metrics-smoke: build
	$(GO) run ./cmd/qsim -bench qv_n5d5 -trials 512 -mode both -metrics /tmp/qsim_metrics_smoke.json -prom-smoke -sample-interval 20ms
	$(GO) run ./cmd/qsim -verify-metrics /tmp/qsim_metrics_smoke.json

# End-to-end tracing check: run a fused QV circuit with span-trace
# capture, then re-read the exported Chrome trace-event JSON and verify
# it is Perfetto-loadable with exact span nesting (one root, every
# parent resolvable, children contained in their parents). The serve
# smoke (below, also under verify-deep) covers the HTTP side: traces
# scraped from a live qsimd over /v1/traces with the traceparent header
# propagated and segment-compile spans reconciled against segcache
# misses.
trace-smoke: build
	$(GO) run ./cmd/qsim -bench qv_n5d5 -trials 512 -mode reordered -fuse exact -workers 2 -trace-out /tmp/qsim_trace_smoke.json
	$(GO) run ./cmd/qsim -verify-trace /tmp/qsim_trace_smoke.json

# Daemon smoke test: start a qsimd core on a loopback listener, drive it
# with the client-side load generator (one cold job, then identical jobs
# fanned out across tenants), and assert the daemon contract end to end —
# histograms bit-identical to direct core.Run, warm jobs all-hit against
# the shared segment cache, cache/pool bounds respected, /metrics a valid
# exposition with per-tenant series, and drain completing every admitted
# job before refusing new work.
serve-smoke: build
	$(GO) run ./cmd/repro -exp service

# The seeded differential self-test: randomized workloads through every
# executor, cross-checked bit-for-bit against naive execution.
selftest: build
	$(GO) run ./cmd/qsim -selftest -seed 1 -selftest-runs 50

# Short fuzz passes over every fuzz target (one -fuzz per package run).
fuzz-smoke:
	$(GO) test -run ^$$ -fuzz FuzzTrialSerializeRoundTrip -fuzztime 10s ./internal/trial
	$(GO) test -run ^$$ -fuzz FuzzParseQASM -fuzztime 10s ./internal/circuit
	$(GO) test -run ^$$ -fuzz FuzzCompileParity -fuzztime 10s ./internal/statevec
	$(GO) test -run ^$$ -fuzz FuzzDaggerRoundTrip -fuzztime 10s ./internal/statevec
	$(GO) test -run ^$$ -fuzz FuzzBatchedSweepParity -fuzztime 10s ./internal/statevec
	$(GO) test -run ^$$ -fuzz FuzzParseTraceparent -fuzztime 10s ./internal/trace

# The deep correctness gate: everything verify runs, plus vet, the race
# detector over the whole tree (includes the -short-gated deep
# differential sweep, the batch bit-identity sweep at 1/2/4/8 workers,
# and the restore-policy matrix), fuzz smoke, the CLI self-test, the
# zero-alloc steady-state gate, the daemon smoke test, and the
# cross-circuit batch and restore-policy experiments end to end.
verify-deep: build
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) fuzz-smoke
	$(MAKE) selftest
	$(MAKE) alloc-gate
	$(MAKE) trace-smoke
	$(MAKE) serve-smoke
	$(GO) run ./cmd/repro -exp batch
	$(GO) run ./cmd/repro -exp uncompute
	$(GO) run ./cmd/repro -exp soabatch
